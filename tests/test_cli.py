"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_scene(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "CITY17"])

    def test_technique_defaults(self):
        args = build_parser().parse_args(["run", "WKND"])
        assert args.traversal == "treelet"
        assert args.prefetch == "treelet"
        assert args.scheduler == "pmr"

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "WKND", "--scale", "huge"])


class TestCommands:
    def test_scenes_lists_all(self, capsys):
        assert main(["scenes"]) == 0
        out = capsys.readouterr().out
        for name in ("WKND", "ROBOT", "CHSNT"):
            assert name in out

    def test_stats(self, capsys):
        assert main(["stats", "WKND", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "triangles" in out
        assert "treelets" in out

    def test_run_reports_speedup(self, capsys):
        assert main(["run", "WKND", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "baseline cycles" in out

    def test_run_no_prefetch(self, capsys):
        code = main(
            ["run", "WKND", "--scale", "smoke", "--prefetch", "none",
             "--traversal", "dfs", "--layout", "dfs",
             "--scheduler", "baseline"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "prefetch effectiveness" not in out

    def test_sweep_selected_scenes(self, capsys):
        code = main(
            ["sweep", "--scenes", "WKND", "SHIP", "--scale", "smoke"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "GMean" in out

    def test_render_ascii(self, capsys, tmp_path):
        out_file = tmp_path / "frame.pgm"
        code = main(
            ["render", "WKND", "--scale", "smoke", "--size", "12",
             "--output", str(out_file)]
        )
        assert code == 0
        assert out_file.exists()
        assert "P2" in out_file.read_text()

    def test_run_popularity_heuristic(self, capsys):
        code = main(
            ["run", "WKND", "--scale", "smoke",
             "--heuristic", "popularity", "--threshold", "0.25"]
        )
        assert code == 0

    def test_run_mapping_mode(self, capsys):
        code = main(
            ["run", "WKND", "--scale", "smoke", "--layout", "dfs",
             "--mapping-mode", "loose"]
        )
        assert code == 0
