"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_scene(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "CITY17"])

    def test_technique_defaults(self):
        args = build_parser().parse_args(["run", "WKND"])
        assert args.traversal == "treelet"
        assert args.prefetch == "treelet"
        assert args.scheduler == "pmr"

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "WKND", "--scale", "huge"])


class TestCommands:
    def test_scenes_lists_all(self, capsys):
        assert main(["scenes"]) == 0
        out = capsys.readouterr().out
        for name in ("WKND", "ROBOT", "CHSNT"):
            assert name in out

    def test_stats(self, capsys):
        assert main(["stats", "WKND", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "triangles" in out
        assert "treelets" in out

    def test_run_reports_speedup(self, capsys):
        assert main(["run", "WKND", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "baseline cycles" in out

    def test_run_no_prefetch(self, capsys):
        code = main(
            ["run", "WKND", "--scale", "smoke", "--prefetch", "none",
             "--traversal", "dfs", "--layout", "dfs",
             "--scheduler", "baseline"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "prefetch effectiveness" not in out

    def test_sweep_selected_scenes(self, capsys):
        code = main(
            ["sweep", "--scenes", "WKND", "SHIP", "--scale", "smoke"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "GMean" in out

    def test_render_ascii(self, capsys, tmp_path):
        out_file = tmp_path / "frame.pgm"
        code = main(
            ["render", "WKND", "--scale", "smoke", "--size", "12",
             "--output", str(out_file)]
        )
        assert code == 0
        assert out_file.exists()
        assert "P2" in out_file.read_text()

    def test_run_popularity_heuristic(self, capsys):
        code = main(
            ["run", "WKND", "--scale", "smoke",
             "--heuristic", "popularity", "--threshold", "0.25"]
        )
        assert code == 0

    def test_run_mapping_mode(self, capsys):
        code = main(
            ["run", "WKND", "--scale", "smoke", "--layout", "dfs",
             "--mapping-mode", "loose"]
        )
        assert code == 0


class TestInterrupt:
    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        import repro.cli as cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._COMMANDS, "sweep", interrupted)
        assert main(["sweep", "--scale", "smoke"]) == 130
        err = capsys.readouterr().err
        assert err.strip() == "interrupted: sweep aborted by user"

    def test_keyboard_interrupt_in_serve_exits_130(self, capsys, monkeypatch):
        import repro.cli as cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._COMMANDS, "serve", interrupted)
        assert main(["serve", "--port", "0"]) == 130
        assert "serve aborted by user" in capsys.readouterr().err


class TestServeCli:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8077
        assert args.queue_limit == 64
        assert args.batch_max == 8
        assert args.workers == 1

    def test_loadgen_against_live_service(self, capsys):
        import asyncio
        import json as json_mod
        import threading

        from repro.serve import ServeConfig, SimulationService

        service = SimulationService(ServeConfig(port=0))
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        try:
            asyncio.run_coroutine_threadsafe(
                service.start(), loop
            ).result(30)
            code = main([
                "loadgen", "--port", str(service.port), "--qps", "50",
                "--requests", "6", "--scale", "smoke",
                "--technique", "baseline", "--json",
            ])
            assert code == 0
            summary = json_mod.loads(capsys.readouterr().out)
            assert summary["requests"] == 6
            assert summary["ok"] == 6
            assert summary["errors"] == 0
        finally:
            asyncio.run_coroutine_threadsafe(
                service.aclose(), loop
            ).result(30)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10)
