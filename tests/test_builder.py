"""Unit tests for the binary BVH builders (SAH and median)."""

import pytest

from repro.bvh import BuildConfig, build_binary_bvh
from repro.geometry import Triangle

from conftest import make_triangles


def leaf_primitive_ids(root):
    """All primitive ids stored in leaves, via explicit stack."""
    ids = []
    stack = [root]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            ids.extend(node.primitive_ids)
        else:
            stack.append(node.left)
            stack.append(node.right)
    return ids


class TestBuildConfig:
    def test_rejects_bad_leaf_size(self):
        with pytest.raises(ValueError):
            BuildConfig(max_leaf_size=0)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            BuildConfig(strategy="zorder")

    def test_rejects_tiny_bin_count(self):
        with pytest.raises(ValueError):
            BuildConfig(bin_count=1)


class TestBuildBasics:
    @pytest.mark.parametrize("strategy", ["sah", "median"])
    def test_every_triangle_in_exactly_one_leaf(self, strategy):
        tris = make_triangles(50)
        root = build_binary_bvh(tris, BuildConfig(strategy=strategy))
        ids = leaf_primitive_ids(root)
        assert sorted(ids) == sorted(t.primitive_id for t in tris)

    @pytest.mark.parametrize("strategy", ["sah", "median"])
    def test_leaf_size_respected(self, strategy):
        tris = make_triangles(80)
        config = BuildConfig(max_leaf_size=3, strategy=strategy)
        root = build_binary_bvh(tris, config)
        stack = [root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                assert len(node.primitive_ids) <= 3
            else:
                stack.extend([node.left, node.right])

    def test_bounds_contain_children(self):
        tris = make_triangles(60)
        root = build_binary_bvh(tris)
        stack = [root]
        while stack:
            node = stack.pop()
            if not node.is_leaf:
                assert node.bounds.expanded(1e-9).contains_box(
                    node.left.bounds
                )
                assert node.bounds.expanded(1e-9).contains_box(
                    node.right.bounds
                )
                stack.extend([node.left, node.right])

    def test_empty_input_gives_empty_leaf(self):
        root = build_binary_bvh([])
        assert root.is_leaf and root.primitive_ids == ()
        assert root.bounds.is_empty()

    def test_single_triangle(self):
        tri = Triangle((0.0, 0.0, 0.0), (1.0, 0.0, 0.0), (0.0, 1.0, 0.0), 42)
        root = build_binary_bvh([tri])
        assert root.is_leaf and root.primitive_ids == (42,)

    def test_duplicate_primitive_ids_rejected(self):
        tri = Triangle((0.0, 0.0, 0.0), (1.0, 0.0, 0.0), (0.0, 1.0, 0.0), 1)
        with pytest.raises(ValueError):
            build_binary_bvh([tri, tri])


class TestDegenerateInputs:
    def test_all_coincident_centroids_terminates(self):
        # 10 identical triangles: no spatial split exists.
        tris = [
            Triangle((0.0, 0.0, 0.0), (1.0, 0.0, 0.0), (0.0, 1.0, 0.0), i)
            for i in range(10)
        ]
        root = build_binary_bvh(tris, BuildConfig(max_leaf_size=2))
        assert sorted(leaf_primitive_ids(root)) == list(range(10))

    def test_collinear_centroids(self):
        tris = [
            Triangle(
                (float(i), 0.0, 0.0),
                (float(i) + 0.5, 0.0, 0.0),
                (float(i), 0.5, 0.0),
                i,
            )
            for i in range(16)
        ]
        root = build_binary_bvh(tris, BuildConfig(max_leaf_size=2))
        assert sorted(leaf_primitive_ids(root)) == list(range(16))


class TestSahQuality:
    def test_sah_no_worse_than_median_on_clusters(self):
        """SAH should produce a tree with smaller (or equal) total area."""
        tris = make_triangles(200, seed=3)

        def total_area(node):
            stack, acc = [node], 0.0
            while stack:
                n = stack.pop()
                acc += n.bounds.surface_area()
                if not n.is_leaf:
                    stack.extend([n.left, n.right])
            return acc

        sah = build_binary_bvh(tris, BuildConfig(strategy="sah"))
        median = build_binary_bvh(tris, BuildConfig(strategy="median"))
        assert total_area(sah) <= total_area(median) * 1.10

    def test_node_count_bounds(self):
        tris = make_triangles(100)
        root = build_binary_bvh(tris, BuildConfig(max_leaf_size=1))
        count = root.count_nodes()
        # A binary tree over n leaves has between n and 2n-1 nodes.
        assert 100 <= count <= 2 * 100 - 1 + 100  # allow degenerate splits

    def test_max_depth_reasonable(self):
        tris = make_triangles(128)
        root = build_binary_bvh(tris)
        assert root.max_depth() <= 64
