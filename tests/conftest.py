"""Shared fixtures: small deterministic geometry, BVHs, decompositions."""

from __future__ import annotations

import pytest

from repro.bvh import BuildConfig, build_wide_bvh
from repro.geometry import Ray, Triangle
from repro.scenes import soup, sphere
from repro.treelet import form_treelets


def make_triangles(n: int = 64, seed: int = 7):
    """A deterministic clustered triangle soup as Triangle objects."""
    mesh = soup(n, extent=8.0, tri_size=0.4, seed=seed, clusters=4)
    return mesh.triangles()


@pytest.fixture(scope="session")
def triangles():
    return make_triangles()


@pytest.fixture(scope="session")
def small_bvh(triangles):
    """A wide BVH over the shared soup (session-scoped; treat read-only)."""
    bvh = build_wide_bvh(
        triangles,
        config=BuildConfig(max_leaf_size=2),
        branching_factor=3,
        name="fixture",
    )
    bvh.validate()
    return bvh


@pytest.fixture(scope="session")
def decomposition(small_bvh):
    dec = form_treelets(small_bvh, 512)
    dec.validate()
    return dec


@pytest.fixture(scope="session")
def sphere_bvh():
    """A BVH over a single sphere (predictable hits from outside)."""
    mesh = sphere(stacks=8, slices=12, radius=1.0, center=(0.0, 0.0, 0.0))
    bvh = build_wide_bvh(
        mesh.triangles(), config=BuildConfig(max_leaf_size=2), name="sphere"
    )
    bvh.validate()
    return bvh


def center_ray() -> Ray:
    """A ray guaranteed to hit the unit sphere at (0,0,0) head-on."""
    return Ray(origin=(0.0, 0.0, 5.0), direction=(0.0, 0.0, -1.0))


@pytest.fixture
def unit_triangle() -> Triangle:
    return Triangle((0.0, 0.0, 0.0), (1.0, 0.0, 0.0), (0.0, 1.0, 0.0), 0)
