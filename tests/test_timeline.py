"""Unit tests for the timeline sampler."""

import pytest

from repro.bvh import dfs_layout
from repro.core.config import CacheConfig, GpuConfig
from repro.gpusim import GpuModel, TimelineSampler
from repro.traversal import traverse_dfs_batch
from repro.geometry import Ray


def tiny_config():
    return GpuConfig(
        n_sms=2,
        warp_buffer_size=4,
        l1=CacheConfig(size_bytes=1024, line_bytes=128, latency=20),
        l2=CacheConfig(size_bytes=8 * 1024, line_bytes=128,
                       associativity=8, latency=160),
    )


@pytest.fixture
def workload(small_bvh):
    rays = [
        Ray(origin=(0.0, 0.0, 12.0),
            direction=(0.04 * i - 0.8, 0.02 * i - 0.4, -1.0))
        for i in range(40)
    ]
    return traverse_dfs_batch(rays, small_bvh), small_bvh, dfs_layout(small_bvh)


class TestSampler:
    def test_interval_validated(self):
        with pytest.raises(ValueError):
            TimelineSampler(interval=0)

    def test_samples_collected(self, workload):
        traces, bvh, layout = workload
        sampler = TimelineSampler(interval=16)
        model = GpuModel(tiny_config(), timeline=sampler)
        model.load(traces, bvh, layout)
        stats = model.run()
        assert sampler.samples
        assert sampler.samples[0].cycle == 0
        cycles = sampler.series("cycle")
        assert cycles == sorted(cycles)
        assert all(
            b - a >= 16 for a, b in zip(cycles, cycles[1:])
        )
        assert cycles[-1] <= stats.cycles

    def test_observational_only(self, workload):
        """Attaching a sampler must not perturb the simulation."""
        traces, bvh, layout = workload
        plain = GpuModel(tiny_config())
        plain.load(traces, bvh, layout)
        baseline = plain.run()
        sampled = GpuModel(tiny_config(), timeline=TimelineSampler(interval=8))
        sampled.load(traces, bvh, layout)
        observed = sampled.run()
        assert observed.cycles == baseline.cycles
        assert observed.visits_completed == baseline.visits_completed
        assert observed.l1.demand_hits == baseline.l1.demand_hits

    def test_series_and_mean(self, workload):
        traces, bvh, layout = workload
        sampler = TimelineSampler(interval=32)
        model = GpuModel(tiny_config(), timeline=sampler)
        model.load(traces, bvh, layout)
        model.run()
        warps = sampler.series("resident_warps")
        assert len(warps) == len(sampler.samples)
        assert sampler.mean("resident_warps") == pytest.approx(
            sum(warps) / len(warps)
        )

    def test_empty_sampler_mean(self):
        assert TimelineSampler().mean("ready_rays") == 0.0
