"""Unit tests for the timeline sampler."""

import pytest

from repro.bvh import dfs_layout
from repro.core.config import CacheConfig, GpuConfig
from repro.gpusim import GpuModel, TimelineSampler
from repro.traversal import traverse_dfs_batch
from repro.geometry import Ray


def tiny_config():
    return GpuConfig(
        n_sms=2,
        warp_buffer_size=4,
        l1=CacheConfig(size_bytes=1024, line_bytes=128, latency=20),
        l2=CacheConfig(size_bytes=8 * 1024, line_bytes=128,
                       associativity=8, latency=160),
    )


@pytest.fixture
def workload(small_bvh):
    rays = [
        Ray(origin=(0.0, 0.0, 12.0),
            direction=(0.04 * i - 0.8, 0.02 * i - 0.4, -1.0))
        for i in range(40)
    ]
    return traverse_dfs_batch(rays, small_bvh), small_bvh, dfs_layout(small_bvh)


class TestSampler:
    def test_interval_validated(self):
        with pytest.raises(ValueError):
            TimelineSampler(interval=0)

    def test_samples_collected(self, workload):
        traces, bvh, layout = workload
        sampler = TimelineSampler(interval=16)
        model = GpuModel(tiny_config(), timeline=sampler)
        model.load(traces, bvh, layout)
        stats = model.run()
        assert sampler.samples
        assert sampler.samples[0].cycle == 0
        cycles = sampler.series("cycle")
        # Strictly increasing, never oversampling the interval grid.
        assert all(b > a for a, b in zip(cycles, cycles[1:]))
        assert len(cycles) <= stats.cycles // 16 + 1
        assert cycles[-1] <= stats.cycles

    def test_observational_only(self, workload):
        """Attaching a sampler must not perturb the simulation."""
        traces, bvh, layout = workload
        plain = GpuModel(tiny_config())
        plain.load(traces, bvh, layout)
        baseline = plain.run()
        sampled = GpuModel(tiny_config(), timeline=TimelineSampler(interval=8))
        sampled.load(traces, bvh, layout)
        observed = sampled.run()
        assert observed.cycles == baseline.cycles
        assert observed.visits_completed == baseline.visits_completed
        assert observed.l1.demand_hits == baseline.l1.demand_hits

    def test_series_and_mean(self, workload):
        traces, bvh, layout = workload
        sampler = TimelineSampler(interval=32)
        model = GpuModel(tiny_config(), timeline=sampler)
        model.load(traces, bvh, layout)
        model.run()
        warps = sampler.series("resident_warps")
        assert len(warps) == len(sampler.samples)
        assert sampler.mean("resident_warps") == pytest.approx(
            sum(warps) / len(warps)
        )

    def test_empty_sampler_mean(self):
        assert TimelineSampler().mean("ready_rays") == 0.0

    def test_no_interval_drift_on_late_calls(self):
        """A call landing past the boundary must not re-phase the grid.

        The old schedule (``next = cycle + interval``) drifted: a call at
        cycle 21 with interval 16 pushed the next threshold to 37, so a
        call at cycle 32 was skipped.  The grid stays at multiples of the
        interval now.
        """
        sampler = TimelineSampler(interval=16)
        sampler.maybe_sample(0, [])
        sampler.maybe_sample(21, [])  # late past the 16 boundary
        sampler.maybe_sample(32, [])  # exactly on the next grid point
        assert sampler.series("cycle") == [0, 21, 32]

    def test_late_call_skips_missed_grid_points_once(self):
        """Jumping over several boundaries samples once, then realigns."""
        sampler = TimelineSampler(interval=10)
        sampler.maybe_sample(0, [])
        sampler.maybe_sample(35, [])  # crossed 10, 20, 30
        sampler.maybe_sample(39, [])  # before 40: no sample
        sampler.maybe_sample(40, [])
        assert sampler.series("cycle") == [0, 35, 40]

    def test_registry_gauge_fold(self):
        """Samples mirror into a MetricRegistry as gauge series."""
        from repro.obs import MetricRegistry

        class FakePrefetcher:
            def queue_depth(self):
                return 3

        class FakeUnit:
            sm_id = 0
            buffer = [object(), object()]
            prefetcher = FakePrefetcher()

            def ready_total(self):
                return 5

        registry = MetricRegistry()
        sampler = TimelineSampler(interval=4, registry=registry)
        sampler.maybe_sample(0, [FakeUnit()])
        sampler.maybe_sample(4, [FakeUnit()])
        ready = registry.gauge("occupancy.ready_rays")
        assert ready.cycles == [0, 4]
        assert ready.values == [5, 5]
        assert registry.gauge("occupancy.sm0.resident_warps").values == [2, 2]
        assert registry.gauge("prefetch.queue_depth").last == 3
