"""Unit tests for trace serialization."""

import json

import pytest

from repro.geometry import Ray
from repro.traversal import (
    load_traces,
    save_traces,
    summarize_traces,
    trace_from_dict,
    trace_to_dict,
    traverse_dfs_batch,
)


@pytest.fixture
def traces(small_bvh):
    rays = [
        Ray(
            origin=(0.0, 0.0, 12.0),
            direction=(0.05 * i - 0.4, 0.02 * i - 0.2, -1.0),
        )
        for i in range(16)
    ]
    return traverse_dfs_batch(rays, small_bvh)


class TestRoundTrip:
    def test_dict_roundtrip_preserves_visits(self, traces):
        for trace in traces:
            restored = trace_from_dict(trace_to_dict(trace))
            assert restored.ray_id == trace.ray_id
            assert restored.visits == trace.visits
            assert restored.box_tests == trace.box_tests
            assert restored.primitive_tests == trace.primitive_tests

    def test_dict_roundtrip_preserves_hits(self, traces):
        for trace in traces:
            restored = trace_from_dict(trace_to_dict(trace))
            assert (restored.hit is None) == (trace.hit is None)
            if trace.hit is not None:
                assert restored.hit.t == trace.hit.t
                assert restored.hit.primitive_id == trace.hit.primitive_id

    def test_file_roundtrip(self, traces, tmp_path):
        path = save_traces(traces, tmp_path / "traces.json")
        restored = load_traces(path)
        assert summarize_traces(restored).total_nodes == summarize_traces(
            traces
        ).total_nodes
        assert [t.ray_id for t in restored] == [t.ray_id for t in traces]

    def test_file_is_plain_json(self, traces, tmp_path):
        path = save_traces(traces, tmp_path / "traces.json")
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1
        assert len(payload["traces"]) == len(traces)


class TestValidation:
    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99, "traces": []}))
        with pytest.raises(ValueError):
            load_traces(path)

    def test_misaligned_visits_rejected(self):
        with pytest.raises(ValueError):
            trace_from_dict({"ray_id": 0, "visits": [1, 0]})

    def test_empty_batch(self, tmp_path):
        path = save_traces([], tmp_path / "empty.json")
        assert load_traces(path) == []

    def test_loaded_traces_drive_timing_model(self, traces, small_bvh, tmp_path):
        """Serialized traces must be usable as timing-model input."""
        from repro.bvh import dfs_layout
        from repro.core.config import smoke_config
        from repro.gpusim import GpuModel

        path = save_traces(traces, tmp_path / "traces.json")
        restored = load_traces(path)
        model = GpuModel(smoke_config())
        model.load(restored, small_bvh, dfs_layout(small_bvh))
        direct = GpuModel(smoke_config())
        direct.load(traces, small_bvh, dfs_layout(small_bvh))
        assert model.run().cycles == direct.run().cycles
