"""End-to-end integration tests: the paper's headline shapes at smoke scale.

These run the full pipeline (scene -> BVH -> treelets -> traces -> timing
sim) and assert the *qualitative* results the reproduction must deliver.
Quantitative shapes are exercised at larger scale by the benchmark
harness; here we only pin down directions and invariants that must hold
even on miniature workloads.
"""

import pytest

from repro import (
    BASELINE,
    SMOKE,
    TREELET_PREFETCH,
    TREELET_TRAVERSAL_ONLY,
    Technique,
    run_experiment,
    speedup,
)
from repro.core.pipeline import DEFAULT, get_traces
from repro.power import evaluate_power
from repro.prefetch import PrefetchHeuristic

SCENES = ["WKND", "SHIP", "BUNNY"]


class TestWorkConservation:
    """All techniques complete exactly the work their traces specify."""

    @pytest.mark.parametrize("scene", SCENES)
    def test_visits_match_traces(self, scene):
        result = run_experiment(scene, TREELET_PREFETCH, SMOKE)
        traces = get_traces(scene, SMOKE, "treelet", 512)
        assert result.stats.visits_completed == sum(
            len(t.visits) for t in traces
        )

    @pytest.mark.parametrize("scene", SCENES)
    def test_baseline_never_prefetches(self, scene):
        result = run_experiment(scene, BASELINE, SMOKE)
        assert result.stats.prefetches_issued == 0
        assert result.stats.effectiveness.issued == 0

    @pytest.mark.parametrize("scene", SCENES)
    def test_prefetch_issues_requests(self, scene):
        result = run_experiment(scene, TREELET_PREFETCH, SMOKE)
        assert result.stats.prefetches_issued > 0
        assert result.stats.effectiveness.issued > 0


class TestHeadlineShapes:
    def test_prefetch_beats_traversal_only_on_medium_scene(self):
        trav = run_experiment("BUNNY", TREELET_TRAVERSAL_ONLY, SMOKE)
        pref = run_experiment("BUNNY", TREELET_PREFETCH, SMOKE)
        assert pref.cycles <= trav.cycles

    def test_prefetch_reduces_node_latency(self):
        base = run_experiment("BUNNY", BASELINE, SMOKE)
        pref = run_experiment("BUNNY", TREELET_PREFETCH, SMOKE)
        assert (
            pref.stats.avg_node_demand_latency
            < base.stats.avg_node_demand_latency
        )

    def test_prefetch_raises_l2_traffic(self):
        base = run_experiment("BUNNY", BASELINE, SMOKE)
        pref = run_experiment("BUNNY", TREELET_PREFETCH, SMOKE)
        assert pref.stats.l2_bytes >= base.stats.l2_bytes

    def test_power_roughly_flat(self):
        base = run_experiment("BUNNY", BASELINE, SMOKE)
        pref = run_experiment("BUNNY", TREELET_PREFETCH, SMOKE)
        ratio = pref.power.avg_power / base.power.avg_power
        assert 0.8 <= ratio <= 1.3

    def test_voter_decisions_recorded(self):
        pref = run_experiment("BUNNY", TREELET_PREFETCH, SMOKE)
        assert pref.stats.voter_decisions > 0
        assert pref.stats.voter_accuracy == 1.0  # full voter default


class TestTechniqueMatrix:
    """Every point of the design space runs to completion at smoke scale."""

    @pytest.mark.parametrize("scheduler", ["baseline", "omr", "pmr"])
    def test_schedulers(self, scheduler):
        technique = Technique(
            traversal="treelet",
            layout="treelet",
            prefetch="treelet",
            scheduler=scheduler,
        )
        assert run_experiment("SHIP", technique, SMOKE).cycles > 0

    @pytest.mark.parametrize(
        "heuristic",
        [
            PrefetchHeuristic("always"),
            PrefetchHeuristic("popularity", threshold=0.25),
            PrefetchHeuristic("popularity", threshold=0.75),
            PrefetchHeuristic("partial"),
        ],
    )
    def test_heuristics(self, heuristic):
        technique = Technique(
            traversal="treelet",
            layout="treelet",
            prefetch="treelet",
            heuristic=heuristic,
        )
        assert run_experiment("SHIP", technique, SMOKE).cycles > 0

    @pytest.mark.parametrize("treelet_bytes", [256, 512, 1024, 2048])
    def test_treelet_sizes(self, treelet_bytes):
        technique = Technique(
            traversal="treelet",
            layout="treelet",
            prefetch="treelet",
            treelet_bytes=treelet_bytes,
        )
        assert run_experiment("SHIP", technique, SMOKE).cycles > 0

    @pytest.mark.parametrize("latency", [0, 32, 128])
    def test_voter_latencies(self, latency):
        technique = Technique(
            traversal="treelet",
            layout="treelet",
            prefetch="treelet",
            voter_mode="pseudo",
            voter_latency=latency,
        )
        result = run_experiment("SHIP", technique, SMOKE)
        assert result.cycles > 0
        assert 0.0 <= result.stats.voter_accuracy <= 1.0

    @pytest.mark.parametrize("kind", ["mta", "stride", "stream", "ghb"])
    def test_baseline_prefetchers(self, kind):
        assert run_experiment("SHIP", Technique(prefetch=kind), SMOKE).cycles > 0


class TestCrossTechniqueInvariants:
    def test_same_hits_regardless_of_traversal(self):
        dfs_traces = get_traces("BUNNY", SMOKE, "dfs", 512)
        two_traces = get_traces("BUNNY", SMOKE, "treelet", 512)
        assert len(dfs_traces) == len(two_traces)
        for a, b in zip(dfs_traces, two_traces):
            assert (a.hit is None) == (b.hit is None)
            if a.hit is not None:
                assert a.hit.primitive_id == b.hit.primitive_id or (
                    abs(a.hit.t - b.hit.t) < 1e-9
                )

    def test_voter_latency_degrades_or_equals(self):
        fast = run_experiment(
            "BUNNY",
            Technique(
                traversal="treelet",
                layout="treelet",
                prefetch="treelet",
                voter_latency=0,
            ),
            SMOKE,
        )
        slow = run_experiment(
            "BUNNY",
            Technique(
                traversal="treelet",
                layout="treelet",
                prefetch="treelet",
                voter_latency=512,
            ),
            SMOKE,
        )
        # A 512-cycle voter can't beat the ideal one by more than noise.
        assert slow.cycles >= fast.cycles * 0.9
