"""Unit tests for the treelet prefetcher and its address map."""

import pytest

from repro.bvh import dfs_layout
from repro.prefetch import (
    MajorityVoter,
    PrefetchHeuristic,
    TreeletAddressMap,
    TreeletPrefetcher,
)
from repro.treelet import build_mapping_table, treelet_layout


class StubWarp:
    def __init__(self, counts):
        self.alive_treelet_counts = dict(counts)

    def winner_treelet(self):
        if not self.alive_treelet_counts:
            return None
        return min(
            self.alive_treelet_counts,
            key=lambda t: (-self.alive_treelet_counts[t], t),
        )


@pytest.fixture
def address_map(decomposition):
    layout = treelet_layout(decomposition)
    return TreeletAddressMap(decomposition, layout, line_bytes=128)


def drain(prefetcher, cycle=10_000):
    out = []
    while True:
        request = prefetcher.pop_prefetch(cycle)
        if request is None:
            return out
        out.append(request)


class TestAddressMap:
    def test_full_treelet_lines(self, decomposition, address_map):
        treelet = max(decomposition.treelets, key=lambda t: t.node_count)
        lines = address_map.prefetch_lines(treelet.treelet_id, 1.0)
        # 8 nodes x 64B over 128B lines -> at most 4 distinct lines.
        assert 1 <= len(lines) <= 4
        assert all(addr % 128 == 0 for addr in lines)

    def test_fraction_prefix(self, decomposition, address_map):
        treelet = max(decomposition.treelets, key=lambda t: t.node_count)
        full = address_map.prefetch_lines(treelet.treelet_id, 1.0)
        half = address_map.prefetch_lines(treelet.treelet_id, 0.5)
        assert half == full[: len(half)]

    def test_zero_fraction_empty(self, address_map):
        assert address_map.prefetch_lines(0, 0.0) == []

    def test_caching_returns_same_list(self, address_map):
        assert address_map.prefetch_lines(0, 1.0) is address_map.prefetch_lines(
            0, 1.0
        )

    def test_mapping_lines_require_table(self, address_map):
        assert address_map.mapping_lines(0) == []

    def test_mapping_lines_with_table(self, small_bvh, decomposition):
        layout = dfs_layout(small_bvh)
        table = build_mapping_table(decomposition, layout)
        amap = TreeletAddressMap(decomposition, layout, 128, table)
        lines = amap.mapping_lines(0)
        assert lines
        assert all(addr % 128 == 0 for addr in lines)


class TestDecisionFlow:
    def test_always_prefetches_winner(self, address_map):
        prefetcher = TreeletPrefetcher(address_map)
        prefetcher.on_cycle(0, [StubWarp({0: 5})], version=1)
        requests = drain(prefetcher)
        assert requests
        assert prefetcher.last_prefetched_treelet == 0
        expected = address_map.prefetch_lines(0, 1.0)
        assert [r.address for r in requests] == expected

    def test_never_same_treelet_twice_in_a_row(self, address_map):
        prefetcher = TreeletPrefetcher(address_map)
        prefetcher.on_cycle(0, [StubWarp({0: 5})], version=1)
        drain(prefetcher)
        prefetcher.on_cycle(1, [StubWarp({0: 5})], version=2)
        assert drain(prefetcher) == []

    def test_alternating_treelets_both_prefetched(self, address_map):
        prefetcher = TreeletPrefetcher(address_map)
        prefetcher.on_cycle(0, [StubWarp({0: 5})], version=1)
        first = drain(prefetcher)
        prefetcher.on_cycle(1, [StubWarp({1: 5})], version=2)
        second = drain(prefetcher)
        assert first and second
        assert first[0].address != second[0].address

    def test_version_gate_skips_recompute(self, address_map):
        prefetcher = TreeletPrefetcher(address_map)
        prefetcher.on_cycle(0, [StubWarp({0: 5})], version=1)
        decisions_before = prefetcher.voter.stats.decisions
        prefetcher.on_cycle(1, [StubWarp({0: 5})], version=1)
        assert prefetcher.voter.stats.decisions == decisions_before

    def test_popularity_threshold_blocks_low_ratio(self, address_map):
        prefetcher = TreeletPrefetcher(
            address_map,
            heuristic=PrefetchHeuristic("popularity", threshold=0.5),
            warp_size=32,
            warp_buffer_size=16,
        )
        # Winner holds 5 of 12 voting rays -> ratio ~0.42 < 0.5.
        prefetcher.on_cycle(0, [StubWarp({0: 5, 1: 4, 2: 3})], version=1)
        assert drain(prefetcher) == []

    def test_popularity_threshold_passes_high_ratio(self, address_map):
        prefetcher = TreeletPrefetcher(
            address_map,
            heuristic=PrefetchHeuristic("popularity", threshold=0.5),
        )
        # Winner holds 9 of 12 voting rays -> ratio 0.75 >= 0.5.
        prefetcher.on_cycle(0, [StubWarp({0: 9, 1: 3})], version=1)
        assert drain(prefetcher)

    def test_partial_prefetches_prefix(self, decomposition, address_map):
        treelet = max(decomposition.treelets, key=lambda t: t.node_count)
        other = min(
            (t for t in decomposition.treelets if t is not treelet),
            key=lambda t: t.treelet_id,
        )
        prefetcher = TreeletPrefetcher(
            address_map, heuristic=PrefetchHeuristic("partial")
        )
        # Winner holds half the votes -> prefetch half the treelet.
        prefetcher.on_cycle(
            0,
            [StubWarp({treelet.treelet_id: 2, other.treelet_id: 1}),
             StubWarp({other.treelet_id: 1})],
            version=1,
        )
        requests = drain(prefetcher)
        full = address_map.prefetch_lines(treelet.treelet_id, 1.0)
        half = address_map.prefetch_lines(treelet.treelet_id, 0.5)
        assert [r.address for r in requests] == half
        assert len(half) <= len(full)

    def test_voter_latency_delays_release(self, address_map):
        prefetcher = TreeletPrefetcher(
            address_map, voter=MajorityVoter("full", latency=32)
        )
        prefetcher.on_cycle(0, [StubWarp({0: 5})], version=1)
        assert prefetcher.pop_prefetch(10) is None  # still counting
        assert prefetcher.pop_prefetch(32) is not None

    def test_decision_period_follows_latency(self, address_map):
        prefetcher = TreeletPrefetcher(
            address_map, voter=MajorityVoter("full", latency=16)
        )
        prefetcher.on_cycle(0, [StubWarp({0: 5})], version=1)
        # Next decision only at cycle 16, even with new state.
        prefetcher.on_cycle(1, [StubWarp({1: 9})], version=2)
        drain(prefetcher, cycle=100)
        assert prefetcher.last_prefetched_treelet == 0
        prefetcher.on_cycle(16, [StubWarp({1: 9})], version=3)
        requests = drain(prefetcher, cycle=100)
        assert prefetcher.last_prefetched_treelet == 1
        assert requests

    def test_new_decision_does_not_redelay_queued_entries(self, address_map):
        """The voter-latency gate is carried per entry: a later decision
        must not push back entries whose gate has already elapsed."""
        prefetcher = TreeletPrefetcher(
            address_map, voter=MajorityVoter("full", latency=16)
        )
        prefetcher.on_cycle(0, [StubWarp({0: 5})], version=1)  # release 16
        # A fresh decision lands exactly when the first batch becomes
        # issueable; its entries release at 32, the old ones at 16.
        prefetcher.on_cycle(16, [StubWarp({1: 9})], version=2)
        first_batch = drain(prefetcher, cycle=16)
        expected = address_map.prefetch_lines(0, 1.0)
        assert [r.address for r in first_batch] == expected
        # The second decision's entries stay gated until cycle 32.
        assert prefetcher.pop_prefetch(16) is None
        assert prefetcher.pop_prefetch(31) is None
        assert prefetcher.pop_prefetch(32) is not None

    def test_release_cycle_recorded_on_entries(self, address_map):
        prefetcher = TreeletPrefetcher(
            address_map, voter=MajorityVoter("full", latency=8)
        )
        prefetcher.on_cycle(4, [StubWarp({0: 5})], version=1)
        requests = drain(prefetcher, cycle=1000)
        assert requests
        assert all(r.release_cycle == 12 for r in requests)

    def test_queue_limit_drops(self, decomposition, address_map):
        prefetcher = TreeletPrefetcher(address_map, queue_limit=1)
        prefetcher.on_cycle(0, [StubWarp({0: 5})], version=1)
        assert prefetcher.queue_depth() <= 1
        full = address_map.prefetch_lines(0, 1.0)
        if len(full) > 1:
            assert prefetcher.stats.requests_dropped >= 1


class TestMappingModes:
    @pytest.fixture
    def dfs_map(self, small_bvh, decomposition):
        layout = dfs_layout(small_bvh)
        layout.node_treelet = dict(decomposition.assignment)
        table = build_mapping_table(decomposition, layout)
        return TreeletAddressMap(decomposition, layout, 128, table)

    def test_mode_requires_table(self, address_map):
        with pytest.raises(ValueError):
            TreeletPrefetcher(address_map, mapping_mode="loose")

    def test_unknown_mode_rejected(self, dfs_map):
        with pytest.raises(ValueError):
            TreeletPrefetcher(dfs_map, mapping_mode="fuzzy")

    def test_loose_prepends_mapping_loads(self, dfs_map):
        prefetcher = TreeletPrefetcher(dfs_map, mapping_mode="loose")
        prefetcher.on_cycle(0, [StubWarp({0: 5})], version=1)
        requests = drain(prefetcher)
        regions = [r.region for r in requests]
        assert regions[0] == "mapping"
        assert "node" in regions
        # All mapping loads come before any node load.
        assert regions.index("node") == len(
            [r for r in regions if r == "mapping"]
        )

    def test_strict_holds_nodes_until_table_returns(self, dfs_map):
        prefetcher = TreeletPrefetcher(dfs_map, mapping_mode="strict")
        prefetcher.on_cycle(0, [StubWarp({0: 5})], version=1)
        mapping_requests = drain(prefetcher)
        assert all(r.region == "mapping" for r in mapping_requests)
        assert prefetcher.queue_depth() == 0  # node lines held back
        for request in mapping_requests:
            request.on_complete(100)  # table loads return
        node_requests = drain(prefetcher)
        assert node_requests
        assert all(r.region == "node" for r in node_requests)
