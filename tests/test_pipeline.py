"""Unit tests for the core pipeline API (Technique, scales, caching)."""

import pytest

from repro import (
    BASELINE,
    SMOKE,
    TREELET_PREFETCH,
    TREELET_TRAVERSAL_ONLY,
    Technique,
    run_experiment,
    scale_from_env,
    speedup,
)
from repro.core.pipeline import (
    DEFAULT,
    FULL,
    get_bvh,
    get_decomposition,
    get_rays,
    get_traces,
)
from repro.prefetch import PrefetchHeuristic


class TestTechniqueValidation:
    def test_defaults_are_baseline(self):
        assert BASELINE.traversal == "dfs"
        assert BASELINE.prefetch is None

    def test_headline_technique(self):
        assert TREELET_PREFETCH.prefetch == "treelet"
        assert TREELET_PREFETCH.scheduler == "pmr"
        assert TREELET_PREFETCH.treelet_bytes == 512

    def test_treelet_prefetch_requires_treelet_traversal(self):
        with pytest.raises(ValueError):
            Technique(traversal="dfs", prefetch="treelet")

    def test_mapping_mode_requires_dfs_layout(self):
        with pytest.raises(ValueError):
            Technique(
                traversal="treelet",
                layout="treelet",
                prefetch="treelet",
                mapping_mode="loose",
            )

    def test_stride_requires_treelet_layout(self):
        with pytest.raises(ValueError):
            Technique(layout="dfs", layout_stride=256)

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError):
            Technique(traversal="bfs")
        with pytest.raises(ValueError):
            Technique(prefetch="psychic")
        with pytest.raises(ValueError):
            Technique(deferred_order="sorted")

    def test_label_readable(self):
        label = TREELET_PREFETCH.label()
        assert "treelet" in label
        assert "PMR" in label

    def test_technique_hashable(self):
        assert hash(TREELET_PREFETCH) != hash(BASELINE)


class TestScales:
    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert scale_from_env() is SMOKE
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert scale_from_env() is FULL
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        assert scale_from_env() is DEFAULT

    def test_raygen_dimensions(self):
        config = SMOKE.raygen()
        assert (config.width, config.height) == (8, 8)

    def test_gpu_config_selection(self):
        assert SMOKE.gpu_config().n_sms == 2
        assert DEFAULT.gpu_config().n_sms == 4


class TestWorkloadCaching:
    def test_bvh_cached(self):
        assert get_bvh("WKND", SMOKE) is get_bvh("WKND", SMOKE)

    def test_scene_cached(self):
        from repro.core import get_scene

        assert get_scene("WKND", SMOKE) is get_scene("WKND", SMOKE)

    def test_scene_built_once_per_scale(self, monkeypatch):
        """Deriving the BVH, rays, and traces for one (scene, scale)
        must construct the scene exactly once (regression: get_bvh and
        get_rays each built their own copy)."""
        from repro.core import clear_caches
        from repro.core import pipeline

        calls = []
        real_build = pipeline.build_scene

        def counting(name, scale):
            calls.append((name, scale))
            return real_build(name, scale)

        monkeypatch.setattr(pipeline, "build_scene", counting)
        # Cold builds only: ignore any globally activated disk cache.
        monkeypatch.setattr("repro.exec.cache._ACTIVE", None)
        clear_caches()
        get_bvh("SHIP", SMOKE)
        get_rays("SHIP", SMOKE)
        get_traces("SHIP", SMOKE, "dfs", 512)
        assert calls == [("SHIP", SMOKE.scene_scale)]
        clear_caches()

    def test_rays_cached(self):
        assert get_rays("WKND", SMOKE) is get_rays("WKND", SMOKE)

    def test_decomposition_keyed_by_size(self):
        a = get_decomposition("WKND", SMOKE, 512)
        b = get_decomposition("WKND", SMOKE, 256)
        assert a is not b

    def test_traces_keyed_by_traversal(self):
        dfs = get_traces("WKND", SMOKE, "dfs", 512)
        two = get_traces("WKND", SMOKE, "treelet", 512)
        assert dfs is not two


class TestRunExperiment:
    def test_baseline_runs(self):
        result = run_experiment("WKND", BASELINE, SMOKE)
        assert result.cycles > 0
        assert result.stats.visits_completed > 0
        assert result.treelet_count == 0

    def test_treelet_runs_have_decomposition(self):
        result = run_experiment("WKND", TREELET_PREFETCH, SMOKE)
        assert result.treelet_count > 0
        assert result.stats.prefetches_issued >= 0

    def test_result_cache_hit(self):
        a = run_experiment("WKND", BASELINE, SMOKE)
        b = run_experiment("WKND", BASELINE, SMOKE)
        assert a is b

    def test_use_cache_false_reruns(self):
        a = run_experiment("WKND", BASELINE, SMOKE)
        b = run_experiment("WKND", BASELINE, SMOKE, use_cache=False)
        assert a is not b
        assert a.cycles == b.cycles  # deterministic

    def test_speedup_helper(self):
        base = run_experiment("WKND", BASELINE, SMOKE)
        pref = run_experiment("WKND", TREELET_PREFETCH, SMOKE)
        assert speedup(base, pref) == pytest.approx(
            base.cycles / pref.cycles
        )

    def test_traversal_only_differs_from_baseline(self):
        base = run_experiment("WKND", BASELINE, SMOKE)
        trav = run_experiment("WKND", TREELET_TRAVERSAL_ONLY, SMOKE)
        assert trav.technique.prefetch is None
        assert trav.traversal.total_nodes != 0
        assert base.stats.prefetches_issued == 0

    def test_heuristic_variants_run(self):
        technique = Technique(
            traversal="treelet",
            layout="treelet",
            prefetch="treelet",
            heuristic=PrefetchHeuristic("popularity", threshold=0.25),
        )
        result = run_experiment("WKND", technique, SMOKE)
        assert result.cycles > 0

    def test_mta_prefetch_runs(self):
        result = run_experiment("WKND", Technique(prefetch="mta"), SMOKE)
        assert result.cycles > 0

    def test_mapping_modes_run(self):
        for mode in ("loose", "strict"):
            technique = Technique(
                traversal="treelet",
                layout="dfs",
                prefetch="treelet",
                mapping_mode=mode,
            )
            result = run_experiment("WKND", technique, SMOKE)
            assert result.cycles > 0

    def test_strided_layout_runs(self):
        technique = Technique(
            traversal="treelet",
            layout="treelet",
            layout_stride=256,
            prefetch="treelet",
        )
        result = run_experiment("WKND", technique, SMOKE)
        assert result.cycles > 0
