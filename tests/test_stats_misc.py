"""Coverage for stats merging, region accounting, and misc corners."""

import pytest

from repro.core.config import CacheConfig, GpuConfig
from repro.gpusim import EventQueue, MemorySystem, SimStats, merge_cache_stats
from repro.gpusim.cache import CacheStats
from repro.gpusim.memsys import REGION_MAPPING, REGION_NODE, REGION_PRIMITIVE


class TestMergeCacheStats:
    def test_merges_all_counters(self):
        a = CacheStats(demand_accesses=3, demand_hits=2, prefetch_misses=1)
        b = CacheStats(demand_accesses=4, demand_misses=4, evictions=2)
        merged = merge_cache_stats([a, b])
        assert merged.demand_accesses == 7
        assert merged.demand_hits == 2
        assert merged.demand_misses == 4
        assert merged.prefetch_misses == 1
        assert merged.evictions == 2

    def test_empty_merge(self):
        merged = merge_cache_stats([])
        assert merged.accesses == 0

    def test_explicit_field_list_covers_all_numeric_fields(self):
        """The merge's explicit field tuple must track the dataclass, so
        adding a counter without listing it fails loudly here instead of
        silently dropping it from aggregates."""
        import dataclasses

        from repro.gpusim.stats import CACHE_STAT_NUMERIC_FIELDS

        numeric = {
            field.name
            for field in dataclasses.fields(CacheStats)
            if isinstance(getattr(CacheStats(), field.name), (int, float))
        }
        assert set(CACHE_STAT_NUMERIC_FIELDS) == numeric

    def test_merge_ignores_non_numeric_fields(self):
        """A non-numeric attribute on CacheStats must not break merging."""
        a = CacheStats(demand_accesses=1)
        b = CacheStats(demand_accesses=2)
        a.debug_label = "L1[0]"  # simulates a future non-numeric field
        merged = merge_cache_stats([a, b])
        assert merged.demand_accesses == 3


class TestSimStatsDerived:
    def test_zero_cycles_safe(self):
        stats = SimStats()
        assert stats.ipc == 0.0
        assert stats.l2_bandwidth == 0.0
        assert stats.stall_fraction == 0.0

    def test_l1_breakdown_zero_denominator(self):
        stats = SimStats()
        assert all(v == 0.0 for v in stats.l1_breakdown().values())


class TestRegionAccounting:
    @pytest.fixture
    def memsys(self):
        events = EventQueue()
        config = GpuConfig(
            n_sms=1,
            l1=CacheConfig(size_bytes=512, line_bytes=128, latency=20),
            l2=CacheConfig(size_bytes=2048, line_bytes=128,
                           associativity=2, latency=160),
        )
        return MemorySystem(config, events), events

    def _drain(self, events):
        while len(events):
            events.run_due(events.next_cycle())

    def test_mapping_region_not_node_latency(self, memsys):
        mem, events = memsys
        mem.access(0, 0x5000, cycle=0, region=REGION_MAPPING,
                   callback=lambda c: None)
        self._drain(events)
        assert mem.node_demand_latency.count == 0
        assert mem.all_demand_latency.count == 1

    def test_node_region_counts_both(self, memsys):
        mem, events = memsys
        mem.access(0, 0x5000, cycle=0, region=REGION_NODE,
                   callback=lambda c: None)
        self._drain(events)
        assert mem.node_demand_latency.count == 1
        assert mem.all_demand_latency.count == 1

    def test_mixed_regions_accumulate(self, memsys):
        mem, events = memsys
        for offset, region in enumerate(
            (REGION_NODE, REGION_PRIMITIVE, REGION_MAPPING)
        ):
            mem.access(0, 0x5000 + offset * 128, cycle=0, region=region,
                       callback=lambda c: None)
        self._drain(events)
        assert mem.node_demand_latency.count == 1
        assert mem.all_demand_latency.count == 3
