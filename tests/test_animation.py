"""Unit tests for multi-frame (animation) simulation."""

import math

import pytest

from repro import BASELINE, SMOKE, TREELET_PREFETCH
from repro.core import AnimationConfig, AnimationResult, orbit_camera, run_animation
from repro.geometry import distance, length, sub
from repro.scenes import Camera


class TestOrbitCamera:
    @pytest.fixture
    def camera(self):
        return Camera(position=(4.0, 2.0, 0.0), look_at=(0.0, 1.0, 0.0))

    def test_zero_angle_identity(self, camera):
        rotated = orbit_camera(camera, 0.0)
        assert rotated.position == pytest.approx(camera.position)

    def test_orbit_preserves_distance(self, camera):
        rotated = orbit_camera(camera, 37.0)
        assert distance(rotated.position, rotated.look_at) == pytest.approx(
            distance(camera.position, camera.look_at)
        )

    def test_orbit_preserves_height(self, camera):
        rotated = orbit_camera(camera, 90.0)
        assert rotated.position[1] == pytest.approx(camera.position[1])

    def test_full_circle_returns(self, camera):
        rotated = orbit_camera(camera, 360.0)
        assert rotated.position == pytest.approx(camera.position)

    def test_look_at_unchanged(self, camera):
        rotated = orbit_camera(camera, 45.0)
        assert rotated.look_at == camera.look_at


class TestAnimationConfig:
    def test_frames_validated(self):
        with pytest.raises(ValueError):
            AnimationConfig(frames=0)


class TestRunAnimation:
    @pytest.fixture(scope="class")
    def baseline_anim(self):
        return run_animation(
            "SHIP", BASELINE, AnimationConfig(frames=3), SMOKE
        )

    def test_per_frame_cycles_positive(self, baseline_anim):
        assert len(baseline_anim.frame_cycles) == 3
        assert all(c > 0 for c in baseline_anim.frame_cycles)

    def test_total_is_sum(self, baseline_anim):
        assert baseline_anim.total_cycles == sum(baseline_anim.frame_cycles)

    def test_warm_frames_not_slower_than_cold(self, baseline_anim):
        """Frame 0 pays the cold caches; warm frames should not cost
        dramatically more."""
        assert baseline_anim.steady_state <= baseline_anim.first_frame * 1.3

    def test_deterministic(self):
        a = run_animation("SHIP", BASELINE, AnimationConfig(frames=2), SMOKE)
        b = run_animation("SHIP", BASELINE, AnimationConfig(frames=2), SMOKE)
        assert a.frame_cycles == b.frame_cycles

    def test_prefetch_technique_runs(self):
        result = run_animation(
            "SHIP", TREELET_PREFETCH, AnimationConfig(frames=2), SMOKE
        )
        assert len(result.frame_cycles) == 2
        assert result.technique is TREELET_PREFETCH

    def test_single_frame_animation(self):
        result = run_animation(
            "SHIP", BASELINE, AnimationConfig(frames=1), SMOKE
        )
        assert result.steady_state == float(result.first_frame)
        assert result.warmup_ratio == 1.0


class TestAnimationResult:
    def test_warmup_ratio(self):
        result = AnimationResult(BASELINE, [200, 100, 100])
        assert result.warmup_ratio == pytest.approx(2.0)
        assert result.steady_state == pytest.approx(100.0)
