"""Acceptance tests for repro.serve: the async simulation service.

The service runs on a private event loop in a background thread; tests
talk to it over real TCP through the shared typed client
(:mod:`repro.serve.client`), exactly like an external caller — no
ad-hoc urllib anywhere.  Covers the PR's contract:

* a served ``POST /v1/run`` returns SimStats bit-identical to a direct
  ``repro.api.run`` call;
* every response carries the ``repro.serve/1`` schema stamp, and a
  request claiming a different schema is rejected with 400;
* a full admission queue sheds with 429 + ``Retry-After``;
* an expired deadline reports ``timeout`` without wedging the worker
  pool;
* SIGTERM (and in-process drain) finish in-flight jobs before exit.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.serve import (
    LoadGenConfig,
    LoadReport,
    RequestOutcome,
    RequestTemplate,
    ResultLRU,
    ServeClient,
    ServeConfig,
    SimulationService,
    TransportError,
    run_loadgen,
)

ROOT = Path(__file__).resolve().parents[1]


class ServiceHandle:
    """A service on its own event loop + thread, driven over real HTTP."""

    def __init__(self, config: ServeConfig) -> None:
        self.service = SimulationService(config)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def start(self) -> "ServiceHandle":
        self.thread.start()
        self.call(self.service.start(), timeout=30)
        return self

    def stop(self) -> None:
        if self.thread.is_alive():
            try:
                self.call(self.service.aclose(), timeout=30)
            except Exception:  # noqa: BLE001 — teardown best-effort
                pass
            self.loop.call_soon_threadsafe(self.loop.stop)
            self.thread.join(timeout=10)

    def call(self, coro, timeout: float = 60):
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(
            timeout
        )

    def call_soon(self, fn) -> None:
        self.loop.call_soon_threadsafe(fn)

    @property
    def port(self) -> int:
        return self.service.port

    # -- HTTP client helpers ------------------------------------------
    # Thin shims over the shared typed client, keeping the historical
    # (status, headers, document) tuple shape the assertions use.

    @property
    def client(self) -> ServeClient:
        return ServeClient("127.0.0.1", self.port)

    def request(self, method: str, path: str, payload=None, timeout=60):
        response = self.client.request(method, path, payload,
                                       timeout=timeout)
        return response.status, response.headers, response.document

    def post(self, path: str, payload, timeout=60):
        return self.request("POST", path, payload, timeout)

    def get(self, path: str, timeout=60):
        return self.request("GET", path, None, timeout)

    def get_raw(self, path: str, timeout=60):
        """GET without assuming a JSON body (Prometheus exposition);
        the client hands non-JSON bodies back as text."""
        return self.request("GET", path, None, timeout)

    def wait_for_state(self, job_id: str, states, timeout: float = 30):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            _status, _headers, doc = self.get(f"/v1/jobs/{job_id}")
            if doc["state"] in states:
                return doc
            time.sleep(0.02)
        raise AssertionError(
            f"job {job_id} never reached {states}; last doc: {doc}"
        )


@pytest.fixture
def serve_factory():
    handles = []

    def make(**overrides) -> ServiceHandle:
        overrides.setdefault("port", 0)
        handle = ServiceHandle(ServeConfig(**overrides)).start()
        handles.append(handle)
        return handle

    yield make
    for handle in handles:
        handle.stop()


def _normalize(document: dict) -> dict:
    """JSON round-trip (tuples -> lists, int keys -> str keys)."""
    return json.loads(json.dumps(document))


class TestServedResults:
    def test_run_bit_identical_to_direct_api(self, serve_factory):
        from repro.api import run as api_run
        from repro.obs import simstats_to_dict

        handle = serve_factory()
        status, _headers, doc = handle.post(
            "/v1/run?wait=1",
            {"scene": "WKND", "technique": "treelet-prefetch",
             "scale": "smoke"},
        )
        assert status == 200
        assert doc["state"] == "done"
        direct = api_run("WKND", "treelet-prefetch", "smoke")
        assert doc["result"]["stats"] == _normalize(
            simstats_to_dict(direct.stats)
        )
        assert doc["result"]["cycles"] == direct.cycles

    def test_run_with_baseline_reports_speedup(self, serve_factory):
        handle = serve_factory()
        status, _headers, doc = handle.post(
            "/v1/run?wait=1",
            {"scene": "WKND", "technique": "treelet-prefetch",
             "scale": "smoke", "baseline": True},
        )
        assert status == 200
        result = doc["result"]
        assert result["speedup"] == pytest.approx(
            result["baseline_cycles"] / result["cycles"]
        )

    def test_sweep_matches_direct_sweep(self, serve_factory):
        from repro.api import sweep as api_sweep

        handle = serve_factory()
        status, _headers, doc = handle.post(
            "/v1/sweep?wait=1",
            {"technique": "treelet-prefetch", "scenes": ["WKND", "SHIP"],
             "scale": "smoke"},
        )
        assert status == 200
        direct = api_sweep("treelet-prefetch", ["WKND", "SHIP"], "smoke")
        assert doc["result"]["gmean_speedup"] == pytest.approx(
            direct.gmean_speedup
        )

    def test_repeat_request_is_cached_and_fast(self, serve_factory):
        handle = serve_factory()
        payload = {"scene": "WKND", "technique": "treelet-prefetch",
                   "scale": "smoke"}
        _status, _headers, cold = handle.post("/v1/run?wait=1", payload)
        assert cold["cached"] is False
        start = time.monotonic()
        status, _headers, warm = handle.post("/v1/run?wait=1", payload)
        elapsed = time.monotonic() - start
        assert status == 200
        assert warm["cached"] is True
        assert warm["state"] == "done"
        assert warm["result"] == cold["result"]
        assert elapsed < 1.0  # served from memory, no simulation
        _status, _headers, metrics = handle.get("/metrics")
        assert metrics["metrics"]["counters"]["serve.cache_hits"] >= 1

    def test_micro_batch_coalesces_concurrent_requests(self, serve_factory):
        handle = serve_factory(start_paused=True, batch_max=8)
        ids = []
        for technique in ("baseline", "treelet-prefetch",
                          "treelet-traversal"):
            status, _headers, doc = handle.post(
                "/v1/run",
                {"scene": "WKND", "technique": technique, "scale": "smoke"},
            )
            assert status == 202
            ids.append(doc["id"])
        handle.call_soon(handle.service.scheduler.resume)
        for job_id in ids:
            doc = handle.wait_for_state(job_id, ("done",))
            assert doc["result"]["cycles"] > 0
        # All three rode one micro-batch through the scheduler.
        _status, _headers, metrics = handle.get("/metrics")
        assert metrics["metrics"]["counters"]["serve.batches"] == 1


class TestBackpressure:
    def test_full_queue_sheds_with_429_and_retry_after(self, serve_factory):
        handle = serve_factory(queue_limit=2, start_paused=True)
        admitted = []
        for index in range(2):
            status, _headers, doc = handle.post(
                "/v1/run",
                {"scene": "WKND", "technique": "baseline", "scale": "smoke",
                 "deadline_s": 60 + index},  # distinct: defeat the LRU
            )
            assert status == 202
            admitted.append(doc["id"])
        status, headers, doc = handle.post(
            "/v1/run",
            {"scene": "SHIP", "technique": "baseline", "scale": "smoke"},
        )
        assert status == 429
        assert "Retry-After" in headers
        assert int(headers["Retry-After"]) >= 1
        assert "queue full" in doc["error"]
        _status, _headers, metrics = handle.get("/metrics")
        assert metrics["metrics"]["counters"]["serve.shed_total"] == 1
        # Draining the queue makes room again.
        handle.call_soon(handle.service.scheduler.resume)
        for job_id in admitted:
            handle.wait_for_state(job_id, ("done",))
        status, _headers, doc = handle.post(
            "/v1/run?wait=1",
            {"scene": "SHIP", "technique": "baseline", "scale": "smoke"},
        )
        assert status == 200 and doc["state"] == "done"

    def test_draining_service_rejects_submissions_with_503(
        self, serve_factory
    ):
        handle = serve_factory()
        handle.service._draining = True  # flag flip; no teardown race
        status, headers, doc = handle.post(
            "/v1/run", {"scene": "WKND", "scale": "smoke"}
        )
        assert status == 503
        assert "Retry-After" in headers
        assert "draining" in doc["error"]
        handle.service._draining = False


class TestDeadlinesAndCancellation:
    def test_expired_deadline_times_out_without_wedging(self, serve_factory):
        handle = serve_factory(start_paused=True)
        status, _headers, doc = handle.post(
            "/v1/run",
            {"scene": "WKND", "technique": "baseline", "scale": "smoke",
             "deadline_s": 0.05},
        )
        assert status == 202
        job_id = doc["id"]
        time.sleep(0.1)  # deadline passes while the job is still queued
        _status, _headers, doc = handle.get(f"/v1/jobs/{job_id}")
        assert doc["state"] == "timeout"
        assert doc["error"] == "deadline exceeded"
        # The scheduler and pool are fine: the next job runs normally.
        handle.call_soon(handle.service.scheduler.resume)
        status, _headers, doc = handle.post(
            "/v1/run?wait=1",
            {"scene": "WKND", "technique": "baseline", "scale": "smoke"},
        )
        assert status == 200 and doc["state"] == "done"

    def test_wait_on_expired_deadline_returns_timeout_state(
        self, serve_factory
    ):
        handle = serve_factory(start_paused=True)
        status, _headers, doc = handle.post(
            "/v1/run?wait=1",
            {"scene": "SHIP", "technique": "baseline", "scale": "smoke",
             "deadline_s": 0.05},
        )
        assert status == 200
        assert doc["state"] == "timeout"

    def test_cancel_queued_job(self, serve_factory):
        handle = serve_factory(start_paused=True)
        _status, _headers, doc = handle.post(
            "/v1/run",
            {"scene": "WKND", "technique": "baseline", "scale": "smoke"},
        )
        job_id = doc["id"]
        status, _headers, doc = handle.post(f"/v1/jobs/{job_id}/cancel", {})
        assert status == 200
        assert doc["state"] == "cancelled"
        # Cancelling a terminal job is a no-op, not an error.
        status, _headers, doc = handle.post(f"/v1/jobs/{job_id}/cancel", {})
        assert status == 200 and doc["state"] == "cancelled"


class TestDrain:
    def test_in_process_drain_finishes_queued_jobs(self, serve_factory):
        handle = serve_factory(start_paused=True)
        ids = []
        for scene in ("WKND", "SHIP"):
            _status, _headers, doc = handle.post(
                "/v1/run",
                {"scene": scene, "technique": "baseline", "scale": "smoke"},
            )
            ids.append(doc["id"])
        port = handle.port  # the property is gone once the server closes
        # begin_drain resumes a paused scheduler, finishes the queue,
        # then closes the listener.
        handle.call(handle.service.begin_drain(), timeout=60)
        for job_id in ids:
            job = handle.service.jobs[job_id]
            assert job.state == "done"
            assert job.result is not None
        with pytest.raises((TransportError, OSError)):
            ServeClient("127.0.0.1", port, timeout=2).healthz()

    def test_sigterm_drains_and_exits_cleanly(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src")
        env.pop("REPRO_CACHE_DIR", None)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--no-cache"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            cwd=str(tmp_path),
            text=True,
        )
        try:
            line = proc.stdout.readline()
            assert "listening on" in line, line
            port = int(line.rsplit(":", 1)[1])
            response = ServeClient("127.0.0.1", port, timeout=30).request(
                "POST", "/v1/run",
                {"scene": "WKND", "technique": "baseline",
                 "scale": "smoke"},
            )
            assert response.status == 202
            proc.send_signal(signal.SIGTERM)  # drain: finish the job, exit 0
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "drained cleanly" in out


class TestHttpSurface:
    def test_healthz_shape(self, serve_factory):
        handle = serve_factory()
        status, _headers, doc = handle.get("/healthz")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["state"] == "serving"
        assert doc["queue_depth"] == 0
        assert "result_cache" in doc

    def test_metrics_shape(self, serve_factory):
        handle = serve_factory()
        handle.post("/v1/run?wait=1",
                    {"scene": "WKND", "technique": "baseline",
                     "scale": "smoke"})
        status, headers, doc = handle.get("/metrics")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert doc["schema"] == "repro.serve_metrics/1"
        counters = doc["metrics"]["counters"]
        assert counters["serve.requests_total"] >= 1
        assert counters["serve.jobs_done"] >= 1
        assert "serve.latency_ms" in doc["metrics"]["histograms"]

    def test_metrics_snapshot_seq_is_monotonic(self, serve_factory):
        handle = serve_factory()
        _, _, first = handle.get("/metrics")
        _, _, second = handle.get("/metrics")
        assert first["snapshot_seq"] >= 1
        assert second["snapshot_seq"] > first["snapshot_seq"]
        assert second["started_unix"] == first["started_unix"] > 0

    def test_metrics_prometheus_exposition(self, serve_factory):
        handle = serve_factory()
        handle.post("/v1/run?wait=1",
                    {"scene": "WKND", "technique": "baseline",
                     "scale": "smoke"})
        status, headers, text = handle.get_raw("/metrics?format=prometheus")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "# TYPE repro_serve_latency_ms histogram" in text
        assert 'repro_serve_latency_ms_bucket{le="+Inf"}' in text
        assert "repro_serve_latency_ms_sum" in text
        assert "repro_serve_latency_ms_count" in text
        assert "repro_serve_snapshot_seq" in text
        # Cumulative buckets: the +Inf bucket equals _count.
        lines = dict(
            line.rsplit(" ", 1)
            for line in text.splitlines()
            if line and not line.startswith("#")
        )
        assert (
            lines['repro_serve_latency_ms_bucket{le="+Inf"}']
            == lines["repro_serve_latency_ms_count"]
        )

    def test_metrics_unknown_format_is_400(self, serve_factory):
        handle = serve_factory()
        status, _headers, doc = handle.get("/metrics?format=xml")
        assert status == 400
        assert "format" in doc["error"]

    def test_unknown_job_is_404(self, serve_factory):
        handle = serve_factory()
        status, _headers, doc = handle.get("/v1/jobs/nope")
        assert status == 404

    def test_unknown_route_is_404(self, serve_factory):
        handle = serve_factory()
        status, _headers, _doc = handle.get("/v2/run")
        assert status == 404

    def test_wrong_method_is_405(self, serve_factory):
        handle = serve_factory()
        status, _headers, _doc = handle.get("/v1/run")
        assert status == 405

    def test_bad_scene_is_400(self, serve_factory):
        handle = serve_factory()
        status, _headers, doc = handle.post("/v1/run", {"scene": "CITY17"})
        assert status == 400
        assert "unknown scene" in doc["error"]

    def test_bad_technique_suggests_near_miss(self, serve_factory):
        handle = serve_factory()
        status, _headers, doc = handle.post(
            "/v1/run", {"scene": "WKND", "technique": "treelet-prefech"}
        )
        assert status == 400
        assert "did you mean 'treelet-prefetch'" in doc["error"]

    def test_malformed_json_is_400(self, serve_factory):
        handle = serve_factory()
        # Raw bytes bypass the client's JSON encoding, reaching the
        # server as a syntactically invalid body.
        status, _headers, doc = handle.post("/v1/run", b"{not json")
        assert status == 400
        assert "JSON" in doc["error"] or "json" in doc["error"]

    def test_every_response_carries_schema_stamp(self, serve_factory):
        from repro.serve import SCHEMA_HEADER

        handle = serve_factory()
        client = handle.client
        responses = [
            client.healthz(),
            client.metrics(),
            client.metrics(fmt="prometheus"),
            client.request("GET", "/v1/jobs/nope"),  # 404
            client.request("GET", "/v2/run"),  # unknown route
            client.request("POST", "/v1/run", {"scene": "CITY17"}),  # 400
        ]
        for response in responses:
            assert response.header(SCHEMA_HEADER) == "repro.serve/1"

    def test_request_claiming_wrong_schema_is_400(self, serve_factory):
        handle = serve_factory()
        status, _headers, doc = handle.post(
            "/v1/run",
            {"schema": "repro.serve/2", "scene": "WKND", "scale": "smoke"},
        )
        assert status == 400
        assert doc["code"] == "schema_mismatch"
        assert "repro.serve/1" in doc["error"]
        # Stamping the *right* schema on the request is accepted.
        status, _headers, doc = handle.post(
            "/v1/run?wait=1",
            {"schema": "repro.serve/1", "scene": "WKND",
             "technique": "baseline", "scale": "smoke"},
        )
        assert status == 200 and doc["state"] == "done"

    def test_server_side_field_in_wire_request_is_400(self, serve_factory):
        handle = serve_factory()
        status, _headers, doc = handle.post(
            "/v1/run",
            {"scene": "WKND", "scale": "smoke", "cache": False},
        )
        assert status == 400
        assert "cache" in doc["error"]

    def test_unknown_field_suggests_near_miss(self, serve_factory):
        handle = serve_factory()
        status, _headers, doc = handle.post(
            "/v1/run", {"scene": "WKND", "tecnique": "baseline"}
        )
        assert status == 400
        assert "did you mean 'technique'" in doc["error"]


class TestLoadgen:
    def test_open_loop_loadgen_all_ok(self, serve_factory):
        handle = serve_factory()
        report = run_loadgen(LoadGenConfig(
            host="127.0.0.1",
            port=handle.port,
            qps=100.0,
            requests=12,
            mix=(RequestTemplate(scene="WKND", technique="baseline",
                                 scale="smoke"),),
            seed=7,
        ))
        summary = report.summary()
        assert summary["requests"] == 12
        assert summary["ok"] == 12
        assert summary["shed"] == 0
        assert summary["errors"] == 0
        assert summary["cached"] >= 10  # one cold run, the rest LRU hits
        assert summary["latency_p50_s"] <= summary["latency_p99_s"]
        assert summary["throughput_rps"] > 0

    def test_report_percentiles_nearest_rank(self):
        report = LoadReport(offered_qps=1.0)
        report.outcomes = [
            RequestOutcome(index=i, offset_s=0.0, status=200,
                           latency_s=float(i + 1), state="done")
            for i in range(100)
        ]
        # True nearest rank (ceil(f*N), the repo-wide definition in
        # repro.obs.metrics.nearest_rank): p50 of 1..100 is 50.0.
        assert report.percentile(0.50) == pytest.approx(50.0)
        assert report.percentile(0.99) == pytest.approx(99.0)
        assert report.percentile(1.0) == pytest.approx(100.0)
        assert report.percentile(0.0) == pytest.approx(1.0)

    def test_percentile_delegates_to_shared_nearest_rank(self):
        # Satellite contract: loadgen percentiles and the obs quantile
        # helper are the same code path — pin both to the same values.
        from repro.obs.metrics import Histogram, nearest_rank

        latencies = [1.0, 2.0, 4.0, 8.0, 16.0]
        report = LoadReport(offered_qps=1.0)
        report.outcomes = [
            RequestOutcome(index=i, offset_s=0.0, status=200,
                           latency_s=value, state="done")
            for i, value in enumerate(latencies)
        ]
        hist = Histogram("lat", bounds=(1, 2, 4, 8, 16))
        for value in latencies:
            hist.record(value)
        for fraction in (0.0, 0.25, 0.5, 0.95, 0.99, 1.0):
            expected = nearest_rank(latencies, fraction)
            assert report.percentile(fraction) == expected
            assert hist.quantile(fraction) == expected


class TestResultLRU:
    def test_eviction_is_strict_lru(self):
        lru = ResultLRU(capacity=2)
        lru.put(("a",), {"v": 1})
        lru.put(("b",), {"v": 2})
        assert lru.get(("a",)) == {"v": 1}  # refresh a
        lru.put(("c",), {"v": 3})  # evicts b
        assert lru.get(("b",)) is None
        assert lru.get(("a",)) == {"v": 1}
        assert lru.get(("c",)) == {"v": 3}
        assert lru.evictions == 1

    def test_zero_capacity_never_stores(self):
        lru = ResultLRU(capacity=0)
        lru.put(("a",), {"v": 1})
        assert lru.get(("a",)) is None
        assert lru.info()["entries"] == 0


class TestRequestTracing:
    """The tentpole's acceptance path: spans across serve -> scheduler
    batch -> exec workers, merged under one request trace_id."""

    def test_submit_stamps_trace_id_header(self, serve_factory):
        handle = serve_factory()
        status, headers, doc = handle.post(
            "/v1/run?wait=1",
            {"scene": "WKND", "technique": "baseline", "scale": "smoke"},
        )
        assert status == 200
        assert headers["X-Repro-Trace-Id"] == doc["trace_id"]
        # Repeat request: served from the LRU, still traced.
        status, headers, doc = handle.post(
            "/v1/run?wait=1",
            {"scene": "WKND", "technique": "baseline", "scale": "smoke"},
        )
        assert doc["cached"] is True
        assert headers["X-Repro-Trace-Id"] == doc["trace_id"]

    def test_job_trace_endpoint_returns_span_tree(self, serve_factory):
        handle = serve_factory()
        _status, _headers, doc = handle.post(
            "/v1/run?wait=1",
            {"scene": "WKND", "technique": "baseline", "scale": "smoke"},
        )
        job_id, trace_id = doc["id"], doc["trace_id"]
        status, headers, trace = handle.get(f"/v1/jobs/{job_id}/trace")
        assert status == 200
        assert trace["schema"] == "repro.spans/1"
        assert trace["trace_id"] == trace_id
        assert headers["X-Repro-Trace-Id"] == trace_id
        spans = trace["spans"]
        assert all(span["trace_id"] == trace_id for span in spans)
        by_name = {span["name"] for span in spans}
        assert {"request", "queue.wait", "serve.batch",
                "serve.execute"} <= by_name
        # The root request span closed when the job finalized, and the
        # batch span parents onto it (single-request batch).
        root = next(s for s in spans if s["name"] == "request")
        assert root["parent_id"] is None
        assert root["end_unix"] is not None
        batch = next(s for s in spans if s["name"] == "serve.batch")
        assert batch["parent_id"] == root["span_id"]

    def test_unknown_trace_is_404(self, serve_factory):
        handle = serve_factory()
        status, _headers, _doc = handle.get("/v1/jobs/nope/trace")
        assert status == 404

    def test_sweep_trace_spans_multiple_worker_processes(
        self, serve_factory
    ):
        """Acceptance criterion: one served sweep (jobs=2 scenes, two
        techniques -> 4 exec jobs) with workers=2 yields one merged
        Perfetto trace spanning serve, the scheduler batch, and >= 2
        exec worker processes — every span carrying the request's
        trace_id."""
        import os

        from repro.core.pipeline import clear_caches

        clear_caches()  # force real work so pool workers get jobs
        handle = serve_factory(workers=2)
        status, headers, doc = handle.post(
            "/v1/sweep?wait=1",
            {"technique": "treelet-prefetch", "scale": "smoke",
             "scenes": ["WKND", "SHIP"]},
            timeout=300,
        )
        assert status == 200 and doc["state"] == "done"
        trace_id = headers["X-Repro-Trace-Id"]
        job_id = doc["id"]

        status, _headers, trace = handle.get(f"/v1/jobs/{job_id}/trace")
        assert status == 200
        spans = trace["spans"]
        assert spans and all(s["trace_id"] == trace_id for s in spans)
        names = {s["name"] for s in spans}
        assert {"request", "serve.batch", "exec.job",
                "phase.replay"} <= names
        # Worker spans came from processes other than the server's, and
        # from at least two distinct worker pids.
        worker_pids = {
            s["pid"] for s in spans if s["process"] == "worker"
        }
        assert len(worker_pids) >= 2
        assert os.getpid() not in worker_pids

        # The Perfetto rendering of the same trace: one process track
        # per recording process, every slice tagged with the trace_id.
        status, _headers, perfetto = handle.get(
            f"/v1/jobs/{job_id}/trace?format=perfetto"
        )
        assert status == 200
        events = perfetto["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        assert all(e["args"]["trace_id"] == trace_id for e in slices)
        process_names = {
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert any(n.startswith("serve") for n in process_names)
        assert sum(1 for n in process_names if n.startswith("worker")) >= 2
