"""Unit tests for the public build_gpu_model helper."""

import pytest

from repro import BASELINE, SMOKE, TREELET_PREFETCH, run_experiment
from repro.core import build_gpu_model
from repro.gpusim import TimelineSampler


class TestBuildGpuModel:
    def test_returns_loaded_model(self):
        model, traces, bvh, layout = build_gpu_model("WKND", BASELINE, SMOKE)
        assert traces
        stats = model.run()
        assert stats.visits_completed == sum(len(t.visits) for t in traces)

    def test_matches_run_experiment(self):
        reference = run_experiment("WKND", TREELET_PREFETCH, SMOKE)
        model, _, _, _ = build_gpu_model("WKND", TREELET_PREFETCH, SMOKE)
        stats = model.run()
        assert stats.cycles == reference.stats.cycles
        assert stats.prefetches_issued == reference.stats.prefetches_issued

    def test_forwards_model_kwargs(self):
        sampler = TimelineSampler(interval=16)
        model, _, _, _ = build_gpu_model(
            "WKND", BASELINE, SMOKE, timeline=sampler
        )
        model.run()
        assert model.timeline is sampler
        assert sampler.samples

    def test_respects_gpu_config_override(self):
        from dataclasses import replace

        gpu = replace(SMOKE.gpu_config(), n_sms=1)
        model, _, _, _ = build_gpu_model(
            "WKND", BASELINE, SMOKE, gpu_config=gpu
        )
        assert len(model.units) == 1
