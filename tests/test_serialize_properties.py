"""Property tests: trace serialization round-trips arbitrary traces."""

from hypothesis import given, settings, strategies as st

from repro.geometry import Hit
from repro.traversal import (
    NodeVisit,
    RayTrace,
    trace_from_dict,
    trace_to_dict,
)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
points = st.tuples(finite, finite, finite)


@st.composite
def traces(draw):
    n = draw(st.integers(0, 30))
    visits = []
    for _ in range(n):
        is_leaf = draw(st.booleans())
        visits.append(
            NodeVisit(
                node_id=draw(st.integers(0, 10_000)),
                is_leaf=is_leaf,
                primitive_count=draw(st.integers(0, 8)) if is_leaf else 0,
            )
        )
    hit = None
    if draw(st.booleans()):
        hit = Hit(
            t=draw(st.floats(min_value=1e-6, max_value=1e6,
                             allow_nan=False)),
            primitive_id=draw(st.integers(0, 10_000)),
            point=draw(points),
            normal=draw(points),
        )
    return RayTrace(
        ray_id=draw(st.integers(0, 2**31)),
        visits=visits,
        hit=hit,
        box_tests=draw(st.integers(0, 1000)),
        primitive_tests=draw(st.integers(0, 1000)),
    )


@settings(max_examples=200, deadline=None)
@given(trace=traces())
def test_dict_roundtrip_identity(trace):
    restored = trace_from_dict(trace_to_dict(trace))
    assert restored.ray_id == trace.ray_id
    assert restored.visits == trace.visits
    assert restored.box_tests == trace.box_tests
    assert restored.primitive_tests == trace.primitive_tests
    assert (restored.hit is None) == (trace.hit is None)
    if trace.hit is not None:
        assert restored.hit.t == trace.hit.t
        assert restored.hit.primitive_id == trace.hit.primitive_id
        assert restored.hit.point == trace.hit.point
        assert restored.hit.normal == trace.hit.normal


@settings(max_examples=50, deadline=None)
@given(batch=st.lists(traces(), max_size=10))
def test_file_roundtrip_identity(batch, tmp_path_factory):
    from repro.traversal import load_traces, save_traces

    path = tmp_path_factory.mktemp("traces") / "batch.json"
    save_traces(batch, path)
    restored = load_traces(path)
    assert len(restored) == len(batch)
    for a, b in zip(batch, restored):
        assert a.visits == b.visits
