"""Observer invariance + end-to-end export checks (the tentpole's contract).

Attaching the trace bus to a run must not change a single field of
``SimStats``, on any (scene, technique) pair — tracing is observation,
never perturbation.  The exported Chrome trace must be valid JSON with
per-track monotonically nondecreasing timestamps, and the run report
must carry the demand-latency and prefetch-timeliness histograms.
"""

import dataclasses
import json

import pytest

from repro import BASELINE, SMOKE, TREELET_PREFETCH, run_experiment
from repro.cli import main
from repro.obs import Observer, build_run_report, to_chrome_trace

SCENES = ("WKND", "SHIP")
TECHNIQUES = {"baseline": BASELINE, "treelet-prefetch": TREELET_PREFETCH}


def _observed_pair(scene, technique):
    plain = run_experiment(scene, technique, SMOKE, use_cache=False)
    observer = Observer()
    traced = run_experiment(scene, technique, SMOKE, observer=observer)
    return plain, traced, observer


class TestObserverInvariance:
    @pytest.mark.parametrize("scene", SCENES)
    @pytest.mark.parametrize("name", sorted(TECHNIQUES))
    def test_simstats_bit_identical(self, scene, name):
        plain, traced, _ = _observed_pair(scene, TECHNIQUES[name])
        assert dataclasses.asdict(traced.stats) == dataclasses.asdict(
            plain.stats
        )

    def test_metrics_agree_with_stats(self):
        _, traced, observer = _observed_pair("WKND", TREELET_PREFETCH)
        metrics = observer.metrics
        # Every demand response was recorded in the latency histogram.
        hist = metrics.histograms["latency.demand.all"]
        assert hist.count > 0
        assert hist.mean == pytest.approx(traced.stats.avg_demand_latency)
        node = metrics.histograms["latency.demand.node"]
        assert node.mean == pytest.approx(
            traced.stats.avg_node_demand_latency
        )
        # Counters mirror the simulation-side aggregates exactly.
        assert (
            metrics.counters["prefetch.issued"].value
            == traced.stats.prefetches_issued
        )
        assert (
            metrics.counters["dram.accesses"].value
            == traced.stats.dram_accesses
        )
        assert (
            metrics.counters["warps.retired"].value == traced.stats.warp_count
        )
        per_partition = [
            metrics.counters[f"dram.partition{p}.accesses"].value
            for p in range(len(traced.stats.dram_per_partition))
        ]
        assert per_partition == traced.stats.dram_per_partition
        assert (
            metrics.counters["rtunit.stall_cycles"].value
            == traced.stats.stall_cycles
        )

    def test_prefetch_timeliness_histograms_populate(self):
        _, traced, observer = _observed_pair("WKND", TREELET_PREFETCH)
        assert traced.stats.prefetches_issued > 0
        hists = observer.metrics.histograms
        assert hists["prefetch.issue_to_fill"].count > 0
        assert hists["prefetch.fill_to_first_hit"].count > 0

    def test_event_taxonomy_coverage(self):
        _, _, observer = _observed_pair("WKND", TREELET_PREFETCH)
        kinds = set(observer.bus.kinds())
        assert {
            "warp.issue",
            "warp.retire",
            "rtunit.stall",
            "cache.access",
            "mshr.merge",
            "dram.service",
            "demand.complete",
            "prefetch.issue",
            "prefetch.fill",
            "voter.decide",
        } <= kinds


class TestPerfettoRoundTrip:
    @pytest.mark.parametrize("name", sorted(TECHNIQUES))
    def test_trace_round_trips_with_monotonic_tracks(self, name):
        _, _, observer = _observed_pair("SHIP", TECHNIQUES[name])
        doc = json.loads(
            json.dumps(to_chrome_trace(observer.bus, observer.metrics))
        )
        events = doc["traceEvents"]
        timed = [e for e in events if e["ph"] != "M"]
        assert timed
        last_ts = {}
        for event in timed:
            key = (event.get("pid"), event.get("tid"))
            assert event["ts"] >= last_ts.get(key, 0)
            last_ts[key] = event["ts"]

    def test_cli_trace_meets_acceptance_bar(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert (
            main(
                ["trace", "WKND", "--scale", "smoke", "--out", str(out)]
            )
            == 0
        )
        doc = json.loads(out.read_text())
        track_names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        # >= 3 distinct track families: SM, RT unit, DRAM partition.
        assert any(t.startswith("SM") for t in track_names)
        assert any(t.startswith("RT") for t in track_names)
        assert any(t.startswith("DRAM[") for t in track_names)
        kinds = {
            e["cat"] for e in doc["traceEvents"] if e["ph"] in ("X", "i")
        }
        assert len(kinds) >= 5

    def test_cli_run_report_has_histograms(self, tmp_path):
        out = tmp_path / "report.json"
        assert (
            main(
                ["run", "WKND", "--scale", "smoke", "--report", str(out)]
            )
            == 0
        )
        report = json.loads(out.read_text())
        assert report["schema"] == "repro.run_report/1"
        hists = report["metrics"]["histograms"]
        assert hists["latency.demand.all"]["count"] > 0
        assert "prefetch.issue_to_fill" in hists
        assert "prefetch.fill_to_first_hit" in hists
        assert report["stats"]["cycles"] > 0

    def test_cli_run_json_is_machine_readable(self, capsys):
        assert main(["run", "WKND", "--scale", "smoke", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["l1"]["demand_accesses"] > 0
        assert payload["baseline"]["effectiveness"]["timely"] == 0
        assert payload["speedup"] > 0

    def test_cli_sweep_json(self, capsys):
        assert (
            main(
                ["sweep", "--scenes", "WKND", "--scale", "smoke", "--json"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert "WKND" in payload["scenes"]
        assert payload["gmean_speedup"] > 0


class TestSpanInvariance:
    """Request spans obey the same contract as the trace bus: pure
    observation.  Collection on must leave SimStats bit-identical, and
    the instrumented BENCH_e2e workload must stay within 5% of plain."""

    @pytest.mark.parametrize("scene", SCENES)
    @pytest.mark.parametrize("name", sorted(TECHNIQUES))
    def test_simstats_bit_identical_with_spans_active(self, scene, name):
        from repro.obs import collect

        plain = run_experiment(
            scene, TECHNIQUES[name], SMOKE, use_cache=False
        )
        with collect(process="invariance") as collector:
            spanned = run_experiment(
                scene, TECHNIQUES[name], SMOKE, use_cache=False
            )
        assert dataclasses.asdict(spanned.stats) == dataclasses.asdict(
            plain.stats
        )
        # Collection actually happened — phases were recorded.
        names = {s.name for s in collector.snapshot()}
        assert {"phase.scene_build", "phase.trace", "phase.replay"} <= names

    def test_span_overhead_within_5_percent_of_bench_e2e(self):
        import time

        from repro.core.pipeline import clear_caches
        from repro.obs import collect

        def cold_e2e():
            # The BENCH_e2e workload: cold treelet-prefetch evaluation.
            clear_caches()
            start = time.perf_counter()
            run_experiment("WKND", TREELET_PREFETCH, SMOKE)
            return time.perf_counter() - start

        def best_of(fn, repeats=3):
            return min(fn() for _ in range(repeats))

        # Timing on a shared box is noisy; spans add ~a dozen contextvar
        # reads per run, so any honest measurement passes.  Retry up to
        # three times before declaring a real regression.
        for attempt in range(3):
            plain = best_of(cold_e2e)
            with collect(process="bench"):
                spanned = best_of(cold_e2e)
            if spanned <= plain * 1.05:
                break
        else:
            raise AssertionError(
                f"span overhead {spanned / plain - 1.0:.1%} exceeds 5% "
                f"(plain={plain:.4f}s spanned={spanned:.4f}s)"
            )
        clear_caches()
