"""Golden equality tests: vectorized packet traversal vs the scalar oracle.

The vectorized backend's contract is *bit identity*, not approximate
agreement — every trace, visit sequence, hit record, and mutated ray
interval must equal what the scalar reference produces.  These tests
pin that contract with randomized kernel inputs, the full 16-scene
library, multi-job packets, merged forests, and end-to-end SimStats.
"""

import random

import numpy as np
import pytest

from repro.core import pipeline
from repro.core.pipeline import (
    SMOKE,
    TREELET_PREFETCH,
    _run_experiment,
    clear_caches,
    get_bvh,
    get_decomposition,
    get_rays,
    prewarm_traces,
    set_trace_backend,
)
from repro.geometry import AABB, Ray, Triangle
from repro.scenes import ALL_SCENES
from repro.traversal import (
    traverse_dfs_batch,
    traverse_forest_jobs,
    traverse_two_stack_batch,
)
from repro.traversal.intersect import ray_aabb_test, ray_triangle_test
from repro.traversal.two_stack import DEFERRED_ORDERS
from repro.traversal.vectorized import (
    ray_aabb_test_batch,
    ray_triangle_test_batch,
    traverse_dfs_packet,
    traverse_packet_jobs,
    traverse_two_stack_packet,
)


def trace_signature(trace):
    hit = trace.hit
    return (
        trace.ray_id,
        tuple(
            (visit.node_id, visit.is_leaf, visit.primitive_count)
            for visit in trace.visits
        ),
        trace.box_tests,
        trace.primitive_tests,
        None
        if hit is None
        else (hit.t, hit.primitive_id, hit.point, hit.normal),
    )


def assert_traces_equal(vectorized, scalar):
    assert len(vectorized) == len(scalar)
    for got, want in zip(vectorized, scalar):
        assert trace_signature(got) == trace_signature(want)


def _random_rays(rng, count):
    rays = []
    for _ in range(count):
        direction = [rng.uniform(-1.0, 1.0) for _ in range(3)]
        # Exercise the parallel-axis paths: zero out a component often.
        for axis in range(3):
            if rng.random() < 0.25:
                direction[axis] = 0.0
        if not any(direction):
            direction[2] = 1.0
        ray = Ray(
            origin=tuple(rng.uniform(-4.0, 4.0) for _ in range(3)),
            direction=tuple(direction),
        )
        if rng.random() < 0.3:
            ray.t_max = rng.uniform(0.5, 6.0)
        rays.append(ray)
    return rays


class TestKernelEquality:
    def test_aabb_batch_matches_scalar_randomized(self):
        rng = random.Random(0xA4BB)
        rays = _random_rays(rng, 400)
        boxes = []
        for ray in rays:
            if rng.random() < 0.2:
                # Box planes touching the ray origin exercise the
                # on-plane slab corner.
                base = list(ray.origin)
            else:
                base = [rng.uniform(-4.0, 4.0) for _ in range(3)]
            extent = [rng.uniform(0.0, 3.0) for _ in range(3)]
            boxes.append(
                AABB(tuple(base), tuple(b + e for b, e in zip(base, extent)))
            )
        origin = np.array([ray.origin for ray in rays])
        inv = np.array([ray.inv_direction for ray in rays])
        t_min = np.array([ray.t_min for ray in rays])
        t_max = np.array([ray.t_max for ray in rays])
        lo = np.array([box.lo for box in boxes])
        hi = np.array([box.hi for box in boxes])
        hit, t_near, t_far = ray_aabb_test_batch(
            origin, inv, t_min, t_max, lo, hi
        )
        for i, (ray, box) in enumerate(zip(rays, boxes)):
            want = ray_aabb_test(ray, box)
            if want is None:
                assert not hit[i]
            else:
                assert hit[i]
                assert (t_near[i], t_far[i]) == want

    def test_triangle_batch_matches_scalar_randomized(self):
        rng = random.Random(0x731A)
        rays = _random_rays(rng, 400)
        triangles = []
        for index in range(len(rays)):
            v0 = tuple(rng.uniform(-3.0, 3.0) for _ in range(3))
            triangles.append(
                Triangle(
                    v0=v0,
                    v1=tuple(c + rng.uniform(-2.0, 2.0) for c in v0),
                    v2=tuple(c + rng.uniform(-2.0, 2.0) for c in v0),
                    primitive_id=index,
                )
            )
        origin = np.array([ray.origin for ray in rays])
        direction = np.array([ray.direction for ray in rays])
        t_min = np.array([ray.t_min for ray in rays])
        t_max = np.array([ray.t_max for ray in rays])
        v0 = np.array([tri.v0 for tri in triangles])
        edge1 = np.array(
            [np.subtract(tri.v1, tri.v0) for tri in triangles]
        )
        edge2 = np.array(
            [np.subtract(tri.v2, tri.v0) for tri in triangles]
        )
        hit, t, _u, _v = ray_triangle_test_batch(
            origin, direction, t_min, t_max, v0, edge1, edge2
        )
        hits_seen = 0
        for i, (ray, tri) in enumerate(zip(rays, triangles)):
            want = ray_triangle_test(ray, tri)
            if want is None:
                assert not hit[i]
            else:
                hits_seen += 1
                assert hit[i]
                assert t[i] == want.t
        assert hits_seen > 0  # the workload must actually exercise hits

    def test_empty_box_never_hits(self):
        ray = Ray(origin=(0.0, 0.0, -2.0), direction=(0.0, 0.0, 1.0))
        assert ray_aabb_test(ray, AABB.empty()) is None
        empty = AABB.empty()
        hit, _, _ = ray_aabb_test_batch(
            np.array([ray.origin]),
            np.array([ray.inv_direction]),
            np.array([ray.t_min]),
            np.array([ray.t_max]),
            np.array([empty.lo]),
            np.array([empty.hi]),
        )
        assert not hit[0]


class TestSlabNanRegression:
    """0 * inf in the slab test: a ray parallel to an axis with its
    origin exactly on a slab plane must not silently pass (or fail) the
    axis through NaN comparisons."""

    @staticmethod
    def _on_plane_ray(x):
        # Parallel to the x slabs of the unit box, entering through z.
        ray = Ray(origin=(x, 0.5, -1.0), direction=(0.0, 0.0, 1.0))
        # Force the IEEE-divide convention (1/0 = inf) that produces
        # 0 * inf = NaN; safe_inverse's huge-finite clamp would mask it.
        ray.inv_direction = (float("inf"), ray.inv_direction[1],
                             ray.inv_direction[2])
        return ray

    def test_scalar_on_plane_parallel_ray_hits(self):
        box = AABB((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        for x in (0.0, 1.0):  # origin on the lo and the hi plane
            result = ray_aabb_test(self._on_plane_ray(x), box)
            assert result == (1.0, 2.0)

    def test_batch_matches_fixed_scalar_semantics(self):
        box = AABB((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        rays = [self._on_plane_ray(0.0), self._on_plane_ray(1.0)]
        hit, t_near, t_far = ray_aabb_test_batch(
            np.array([r.origin for r in rays]),
            np.array([r.inv_direction for r in rays]),
            np.array([r.t_min for r in rays]),
            np.array([r.t_max for r in rays]),
            np.array([box.lo, box.lo]),
            np.array([box.hi, box.hi]),
        )
        assert hit.all()
        assert list(t_near) == [1.0, 1.0]
        assert list(t_far) == [2.0, 2.0]


@pytest.mark.parametrize("scene", ALL_SCENES)
class TestSceneGoldenEquality:
    """Vectorized traces are bit-identical to scalar on every library
    scene (the tentpole acceptance criterion)."""

    def test_dfs_traces_identical(self, scene):
        bvh = get_bvh(scene, SMOKE)
        rays = get_rays(scene, SMOKE)
        scalar = traverse_dfs_batch([r.clone() for r in rays], bvh)
        vector = traverse_dfs_packet([r.clone() for r in rays], bvh)
        assert_traces_equal(vector, scalar)

    def test_two_stack_traces_identical(self, scene):
        bvh = get_bvh(scene, SMOKE)
        rays = get_rays(scene, SMOKE)
        decomposition = get_decomposition(scene, SMOKE, 512)
        scalar = traverse_two_stack_batch(
            [r.clone() for r in rays], bvh, decomposition, "nearest"
        )
        vector = traverse_two_stack_packet(
            [r.clone() for r in rays], bvh, decomposition, "nearest"
        )
        assert_traces_equal(vector, scalar)


class TestPacketShapes:
    """Equality must hold whatever the packet geometry: odd sizes,
    multi-config job batches, and cross-scene merged forests."""

    @pytest.mark.parametrize("order", DEFERRED_ORDERS)
    @pytest.mark.parametrize("packet_size", [7, 4096])
    def test_orders_and_packet_sizes(self, order, packet_size):
        bvh = get_bvh("WKND", SMOKE)
        rays = get_rays("WKND", SMOKE)
        decomposition = get_decomposition("WKND", SMOKE, 512)
        scalar = traverse_two_stack_batch(
            [r.clone() for r in rays], bvh, decomposition, order
        )
        vector = traverse_two_stack_packet(
            [r.clone() for r in rays], bvh, decomposition, order,
            packet_size=packet_size,
        )
        assert_traces_equal(vector, scalar)

    def test_multi_job_packets_match_standalone(self):
        bvh = get_bvh("BUNNY", SMOKE)
        rays = get_rays("BUNNY", SMOKE)
        decomposition = get_decomposition("BUNNY", SMOKE, 512)
        jobs = [([r.clone() for r in rays], None, "nearest")] + [
            ([r.clone() for r in rays], decomposition, order)
            for order in DEFERRED_ORDERS
        ]
        outputs = traverse_packet_jobs(bvh, jobs, packet_size=13)
        expected = [traverse_dfs_batch([r.clone() for r in rays], bvh)] + [
            traverse_two_stack_batch(
                [r.clone() for r in rays], bvh, decomposition, order
            )
            for order in DEFERRED_ORDERS
        ]
        for got, want in zip(outputs, expected):
            assert_traces_equal(got, want)

    def test_forest_merges_scenes_without_cross_talk(self):
        jobs = []
        expected = []
        for scene in ("WKND", "BUNNY", "SPNZA"):
            bvh = get_bvh(scene, SMOKE)
            rays = get_rays(scene, SMOKE)
            decomposition = get_decomposition(scene, SMOKE, 512)
            jobs.append((bvh, [r.clone() for r in rays], None, "nearest"))
            expected.append(
                traverse_dfs_batch([r.clone() for r in rays], bvh)
            )
            jobs.append(
                (bvh, [r.clone() for r in rays], decomposition, "lifo")
            )
            expected.append(
                traverse_two_stack_batch(
                    [r.clone() for r in rays], bvh, decomposition, "lifo"
                )
            )
        outputs = traverse_forest_jobs(jobs, packet_size=17)
        for got, want in zip(outputs, expected):
            assert_traces_equal(got, want)

    def test_ray_interval_mutations_match(self):
        bvh = get_bvh("WKND", SMOKE)
        rays = get_rays("WKND", SMOKE)
        scalar_rays = [r.clone() for r in rays]
        vector_rays = [r.clone() for r in rays]
        traverse_dfs_batch(scalar_rays, bvh)
        traverse_dfs_packet(vector_rays, bvh)
        assert [r.t_max for r in vector_rays] == [
            r.t_max for r in scalar_rays
        ]


class TestBackendEndToEnd:
    def test_simstats_identical_across_backends(self):
        from repro.obs import simstats_to_dict

        stats = {}
        for backend in ("scalar", "vectorized"):
            clear_caches()
            set_trace_backend(backend)
            try:
                result = _run_experiment("WKND", TREELET_PREFETCH, SMOKE)
            finally:
                set_trace_backend(None)
            stats[backend] = simstats_to_dict(result.stats)
        clear_caches()
        assert stats["scalar"] == stats["vectorized"]

    def test_prewarm_traces_matches_get_traces(self):
        from repro.core.pipeline import get_traces

        clear_caches()
        built = prewarm_traces([("WKND", TREELET_PREFETCH)], SMOKE)
        assert built == 1
        warm = get_traces(
            "WKND", SMOKE, TREELET_PREFETCH.traversal,
            TREELET_PREFETCH.treelet_bytes,
            TREELET_PREFETCH.deferred_order, TREELET_PREFETCH.formation,
        )
        # Drop only the trace memoizer: the scene's ray list (and its
        # globally-counted ray ids) must stay identical for the rebuild.
        pipeline._TRACE_CACHE.clear()
        cold = get_traces(
            "WKND", SMOKE, TREELET_PREFETCH.traversal,
            TREELET_PREFETCH.treelet_bytes,
            TREELET_PREFETCH.deferred_order, TREELET_PREFETCH.formation,
            backend="scalar",
        )
        assert_traces_equal(warm, cold)
        clear_caches()
