"""Unit tests for wide-BVH collapse and the flat node representation."""

import pytest

from repro.bvh import (
    BuildConfig,
    FlatBVH,
    FlatNode,
    MAX_CHILDREN,
    build_binary_bvh,
    build_wide_bvh,
    collapse_to_wide,
)
from repro.geometry import AABB

from conftest import make_triangles


class TestCollapse:
    @pytest.mark.parametrize("bf", [2, 3, 4, 6])
    def test_fanout_respected(self, bf):
        tris = make_triangles(60)
        bvh = build_wide_bvh(tris, branching_factor=bf)
        assert all(node.fanout <= bf for node in bvh.nodes)

    def test_invalid_branching_factor(self):
        tris = make_triangles(10)
        root = build_binary_bvh(tris)
        with pytest.raises(ValueError):
            collapse_to_wide(root, tris, branching_factor=1)
        with pytest.raises(ValueError):
            collapse_to_wide(root, tris, branching_factor=7)

    def test_collapse_preserves_primitives(self):
        tris = make_triangles(70)
        bvh = build_wide_bvh(tris)
        leaf_ids = [
            pid
            for node in bvh.nodes
            if node.is_leaf
            for pid in node.primitive_ids
        ]
        assert sorted(leaf_ids) == sorted(t.primitive_id for t in tris)

    def test_validate_passes(self):
        bvh = build_wide_bvh(make_triangles(40))
        bvh.validate()

    def test_bfs_ids_increase_with_depth(self):
        """BFS numbering: parent ids always smaller than child ids, and
        depth is non-decreasing in id order."""
        bvh = build_wide_bvh(make_triangles(90))
        for node in bvh.nodes:
            for child_id in node.child_ids:
                assert child_id > node.node_id
        depths = [node.depth for node in bvh.nodes]
        assert depths == sorted(depths)

    def test_wide_tree_shallower_than_binary(self):
        tris = make_triangles(120)
        binary = build_binary_bvh(tris, BuildConfig(max_leaf_size=2))
        wide = collapse_to_wide(binary, tris, branching_factor=6)
        assert wide.depth() <= binary.max_depth()

    def test_single_triangle_tree(self):
        tris = make_triangles(1)
        bvh = build_wide_bvh(tris)
        assert len(bvh) == 1
        assert bvh.root.is_leaf


class TestFlatNode:
    def test_leaf_and_internal_exclusive(self):
        with pytest.raises(ValueError):
            FlatNode(
                node_id=0,
                bounds=AABB.empty(),
                child_ids=(1,),
                primitive_ids=(0,),
            )

    def test_too_many_children_rejected(self):
        with pytest.raises(ValueError):
            FlatNode(
                node_id=0,
                bounds=AABB.empty(),
                child_ids=tuple(range(1, MAX_CHILDREN + 2)),
            )


class TestFlatBVH:
    def test_node_ids_must_match_indices(self):
        node = FlatNode(node_id=5, bounds=AABB.empty())
        with pytest.raises(ValueError):
            FlatBVH(nodes=[node], triangles=[])

    def test_empty_node_list_rejected(self):
        with pytest.raises(ValueError):
            FlatBVH(nodes=[], triangles=[])

    def test_validate_catches_bad_parent_link(self, small_bvh):
        # Corrupt a copy of the nodes.
        import copy

        broken = copy.deepcopy(small_bvh)
        victim = next(n for n in broken.nodes if n.parent_id > 0)
        victim.parent_id = 0 if victim.parent_id != 0 else 1
        with pytest.raises(ValueError):
            broken.validate()

    def test_depth_counts_levels(self, small_bvh):
        assert small_bvh.depth() == 1 + max(n.depth for n in small_bvh.nodes)

    def test_leaf_plus_internal_partition(self, small_bvh):
        assert len(small_bvh.leaf_ids()) + len(small_bvh.internal_ids()) == len(
            small_bvh
        )
