"""Unit tests for OBJ import/export."""

import numpy as np
import pytest

from repro.scenes import box, sphere
from repro.scenes.obj_io import ObjFormatError, load_obj, save_obj


SIMPLE_OBJ = """
# a single quad, fan-triangulated
v 0 0 0
v 1 0 0
v 1 1 0
v 0 1 0
f 1 2 3 4
"""


class TestLoad:
    def test_quad_becomes_two_triangles(self, tmp_path):
        path = tmp_path / "quad.obj"
        path.write_text(SIMPLE_OBJ)
        mesh = load_obj(path)
        assert mesh.triangle_count == 2
        assert len(mesh.vertices) == 4
        assert mesh.faces.tolist() == [[0, 1, 2], [0, 2, 3]]

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "teapot.obj"
        path.write_text(SIMPLE_OBJ)
        assert load_obj(path).name == "teapot"

    def test_slash_formats_supported(self, tmp_path):
        path = tmp_path / "slashes.obj"
        path.write_text(
            "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1/1 2/2/2 3//3\n"
        )
        mesh = load_obj(path)
        assert mesh.triangle_count == 1

    def test_negative_indices(self, tmp_path):
        path = tmp_path / "neg.obj"
        path.write_text("v 0 0 0\nv 1 0 0\nv 0 1 0\nf -3 -2 -1\n")
        mesh = load_obj(path)
        assert mesh.faces.tolist() == [[0, 1, 2]]

    def test_comments_and_unknown_records_skipped(self, tmp_path):
        path = tmp_path / "noise.obj"
        path.write_text(
            "# header\nmtllib foo.mtl\no thing\nvn 0 0 1\nvt 0 0\n"
            "v 0 0 0\nv 1 0 0\nv 0 1 0\ns off\nf 1 2 3\n"
        )
        assert load_obj(path).triangle_count == 1

    def test_out_of_range_index_rejected(self, tmp_path):
        path = tmp_path / "bad.obj"
        path.write_text("v 0 0 0\nf 1 2 3\n")
        with pytest.raises(ObjFormatError):
            load_obj(path)

    def test_zero_index_rejected(self, tmp_path):
        path = tmp_path / "zero.obj"
        path.write_text("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 0 1 2\n")
        with pytest.raises(ObjFormatError):
            load_obj(path)

    def test_short_face_rejected(self, tmp_path):
        path = tmp_path / "short.obj"
        path.write_text("v 0 0 0\nv 1 0 0\nf 1 2\n")
        with pytest.raises(ObjFormatError):
            load_obj(path)

    def test_bad_coordinate_rejected(self, tmp_path):
        path = tmp_path / "badv.obj"
        path.write_text("v 0 zero 0\n")
        with pytest.raises(ObjFormatError):
            load_obj(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.obj"
        path.write_text("# nothing\n")
        with pytest.raises(ObjFormatError):
            load_obj(path)


class TestRoundTrip:
    @pytest.mark.parametrize("mesh_fn", [box, lambda: sphere(stacks=5, slices=7)])
    def test_save_load_roundtrip(self, tmp_path, mesh_fn):
        original = mesh_fn()
        path = save_obj(original, tmp_path / "mesh.obj")
        restored = load_obj(path)
        assert restored.triangle_count == original.triangle_count
        assert np.allclose(restored.vertices, original.vertices)
        assert np.array_equal(restored.faces, original.faces)

    def test_roundtrip_through_pipeline(self, tmp_path):
        """An imported mesh must drive the full BVH/traversal stack."""
        from repro.bvh import build_wide_bvh
        from repro.geometry import Ray
        from repro.traversal import traverse_dfs

        path = save_obj(box(half_extents=(1.0, 1.0, 1.0)), tmp_path / "box.obj")
        mesh = load_obj(path)
        bvh = build_wide_bvh(mesh.triangles(), name="imported")
        bvh.validate()
        ray = Ray(origin=(0.0, 0.0, 5.0), direction=(0.0, 0.0, -1.0))
        assert traverse_dfs(ray, bvh).hit is not None
