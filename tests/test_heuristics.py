"""Unit tests for prefetch heuristics (Section 4.2)."""

import pytest

from repro.prefetch import PrefetchHeuristic


class TestAlways:
    def test_prefetches_whole_treelet_regardless(self):
        h = PrefetchHeuristic("always")
        for ratio in (0.0, 0.01, 0.5, 1.0):
            assert h.fraction_to_prefetch(ratio) == 1.0


class TestPopularity:
    def test_threshold_gates_prefetch(self):
        h = PrefetchHeuristic("popularity", threshold=0.5)
        assert h.fraction_to_prefetch(0.49) == 0.0
        assert h.fraction_to_prefetch(0.5) == 1.0
        assert h.fraction_to_prefetch(0.9) == 1.0

    def test_zero_threshold_degenerates_to_always(self):
        h = PrefetchHeuristic("popularity", threshold=0.0)
        assert h.fraction_to_prefetch(0.0) == 1.0

    def test_threshold_one_requires_unanimity(self):
        h = PrefetchHeuristic("popularity", threshold=1.0)
        assert h.fraction_to_prefetch(0.999) == 0.0
        assert h.fraction_to_prefetch(1.0) == 1.0


class TestPartial:
    def test_fraction_equals_popularity(self):
        h = PrefetchHeuristic("partial")
        assert h.fraction_to_prefetch(0.25) == 0.25
        assert h.fraction_to_prefetch(1.0) == 1.0

    def test_zero_popularity_prefetches_nothing(self):
        h = PrefetchHeuristic("partial")
        assert h.fraction_to_prefetch(0.0) == 0.0


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            PrefetchHeuristic("sometimes")

    def test_threshold_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            PrefetchHeuristic("popularity", threshold=1.5)

    def test_ratio_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            PrefetchHeuristic("always").fraction_to_prefetch(1.5)

    def test_labels(self):
        assert PrefetchHeuristic("always").label() == "ALWAYS"
        assert (
            PrefetchHeuristic("popularity", threshold=0.25).label()
            == "POPULARITY:0.25"
        )
        assert PrefetchHeuristic("partial").label() == "PARTIAL"
