"""Unit tests for repro.obs: bus, metrics, exporters, report schema."""

import json

import pytest

from repro.obs import (
    EV_RTUNIT_STALL,
    MetricRegistry,
    REPORT_SCHEMA,
    TraceBus,
    build_run_report,
    load_run_report,
    simstats_to_dict,
    to_chrome_trace,
    write_run_report,
)
from repro.obs.metrics import Histogram
from repro.gpusim import SimStats


class TestTraceBus:
    def test_emit_and_query(self):
        bus = TraceBus()
        bus.emit("cache.access", 5, "L1[0]", args={"line": 1})
        bus.emit("dram.service", 9, "DRAM[0]", dur=4)
        bus.emit("cache.access", 11, "L1[0]", args={"line": 2})
        assert len(bus) == 3
        assert bus.kinds() == {"cache.access": 2, "dram.service": 1}
        assert bus.tracks() == ["L1[0]", "DRAM[0]"]

    def test_cap_drops_but_still_delivers(self):
        bus = TraceBus(max_events=2)
        seen = []
        bus.subscribe("x", seen.append)
        for cycle in range(5):
            bus.emit("x", cycle, "T")
        assert len(bus) == 2
        assert bus.dropped == 3
        assert len(seen) == 5  # listeners see everything

    def test_subscribe_by_kind(self):
        bus = TraceBus()
        hits = []
        bus.subscribe("a", hits.append)
        bus.emit("b", 0, "T")
        bus.emit("a", 1, "T")
        assert [event.cycle for event in hits] == [1]

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            TraceBus(max_events=0)


class TestMetrics:
    def test_counter(self):
        registry = MetricRegistry()
        registry.counter("n").inc()
        registry.counter("n").inc(4)
        assert registry.counters["n"].value == 5

    def test_gauge_series(self):
        registry = MetricRegistry()
        gauge = registry.gauge("g")
        gauge.record(0, 1.0)
        gauge.record(8, 3.0)
        assert gauge.mean() == 2.0
        assert gauge.as_dict() == {
            "cycles": [0, 8],
            "values": [1.0, 3.0],
            "count": 2,
            "last": 3.0,
            "mean": 2.0,
        }

    def test_empty_series_guards_are_consistent(self):
        # Empty Gauge and Histogram series guard aggregates the same
        # way: counts are 0, value aggregates are None.
        registry = MetricRegistry()
        gauge = registry.gauge("g")
        hist = registry.histogram("h")
        gd, hd = gauge.as_dict(), hist.as_dict()
        assert gd["count"] == 0 and hd["count"] == 0
        assert gd["last"] is None and gd["mean"] is None
        assert hd["mean"] is None and hd["min"] is None and hd["max"] is None

    def test_histogram_buckets(self):
        hist = Histogram("h", bounds=(10, 20, 40))
        for value in (5, 10, 11, 39, 500):
            hist.record(value)
        assert hist.counts == [2, 1, 1, 1]  # <=10, <=20, <=40, overflow
        assert hist.count == 5
        assert hist.min == 5 and hist.max == 500
        assert hist.mean == pytest.approx((5 + 10 + 11 + 39 + 500) / 5)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(20, 10))

    def test_registry_reuses_by_name(self):
        registry = MetricRegistry()
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.counter("c") is registry.counter("c")

    def test_as_dict_shape(self):
        registry = MetricRegistry()
        registry.counter("c").inc()
        registry.gauge("g").record(0, 2)
        registry.histogram("h").record(33)
        data = registry.as_dict()
        assert data["counters"] == {"c": 1}
        assert data["gauges"]["g"]["values"] == [2]
        assert data["histograms"]["h"]["count"] == 1


class TestChromeTraceExport:
    def test_span_and_instant_phases(self):
        bus = TraceBus()
        bus.emit("warp.retire", 10, "SM0", dur=90, args={"warp_id": 0})
        bus.emit("cache.access", 4, "L1[0]", args={"outcome": "hit"})
        doc = to_chrome_trace(bus)
        events = [e for e in doc["traceEvents"] if e["ph"] in ("X", "i")]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(spans) == 1 and spans[0]["dur"] == 90
        assert len(instants) == 1 and instants[0]["s"] == "t"

    def test_thread_names_cover_tracks(self):
        bus = TraceBus()
        bus.emit("a", 0, "SM0")
        bus.emit("b", 1, "DRAM[2]")
        doc = to_chrome_trace(bus)
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {"SM0", "DRAM[2]"}

    def test_adjacent_stalls_merge(self):
        bus = TraceBus()
        for cycle in (3, 4, 5, 9, 10):
            bus.emit(EV_RTUNIT_STALL, cycle, "RT0", dur=1)
        doc = to_chrome_trace(bus)
        stalls = [
            e for e in doc["traceEvents"] if e.get("cat") == EV_RTUNIT_STALL
        ]
        assert sorted((e["ts"], e["dur"]) for e in stalls) == [(3, 3), (9, 2)]

    def test_gauges_become_counter_events(self):
        bus = TraceBus()
        registry = MetricRegistry()
        registry.gauge("occupancy.ready_rays").record(16, 7)
        doc = to_chrome_trace(bus, registry)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters == [
            {
                "name": "occupancy.ready_rays",
                "ph": "C",
                "ts": 16,
                "pid": 0,
                "args": {"value": 7},
            }
        ]


class TestRunReport:
    def test_simstats_round_trip(self):
        stats = SimStats(cycles=100, visits_completed=50)
        data = simstats_to_dict(stats)
        # Nested dataclasses serialize; derived ratios ride along.
        assert data["cycles"] == 100
        assert data["l1"]["demand_accesses"] == 0
        assert data["effectiveness"]["timely"] == 0
        assert data["derived"]["ipc"] == pytest.approx(0.5)
        json.dumps(data)  # must be JSON-serializable

    def test_report_schema_and_io(self, tmp_path):
        report = build_run_report(
            scene="WKND",
            technique="baseline",
            scale="smoke",
            stats=SimStats(cycles=10),
        )
        assert report["schema"] == REPORT_SCHEMA
        path = write_run_report(tmp_path / "sub" / "report.json", report)
        assert load_run_report(path)["scene"] == "WKND"

    def test_load_rejects_other_schemas(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "something/9"}))
        with pytest.raises(ValueError):
            load_run_report(path)
