"""Unit tests for the scene library, camera, and ray generation."""

import math

import pytest

from repro.bvh import build_wide_bvh
from repro.geometry import RayKind, dot, length
from repro.scenes import (
    ALL_SCENES,
    Camera,
    RayGenConfig,
    SCENE_TRIANGLE_BUDGET,
    build_scene,
    generate_primary_rays,
    generate_rays,
    scene_names,
)


class TestCamera:
    @pytest.fixture
    def camera(self):
        return Camera(position=(0.0, 0.0, 5.0), look_at=(0.0, 0.0, 0.0))

    def test_center_pixel_looks_forward(self, camera):
        ray = camera.ray_through_pixel(8, 8, 16, 16)
        assert ray.direction[2] == pytest.approx(-1.0, abs=0.1)

    def test_rays_unit_length(self, camera):
        ray = camera.ray_through_pixel(0, 0, 16, 16)
        assert length(ray.direction) == pytest.approx(1.0)

    def test_corner_rays_diverge(self, camera):
        top_left = camera.ray_through_pixel(0, 0, 16, 16)
        bottom_right = camera.ray_through_pixel(15, 15, 16, 16)
        assert dot(top_left.direction, bottom_right.direction) < 1.0

    def test_y_flip_top_row_points_up(self, camera):
        top = camera.ray_through_pixel(8, 0, 16, 16)
        bottom = camera.ray_through_pixel(8, 15, 16, 16)
        assert top.direction[1] > bottom.direction[1]

    def test_pixel_out_of_range(self, camera):
        with pytest.raises(ValueError):
            camera.ray_through_pixel(16, 0, 16, 16)

    def test_fov_validation(self):
        with pytest.raises(ValueError):
            Camera(position=(0.0, 0.0, 5.0), look_at=(0.0, 0.0, 0.0),
                   fov_degrees=180.0)

    def test_basis_is_orthonormal(self, camera):
        forward, right, up = camera.basis
        assert abs(dot(forward, right)) < 1e-9
        assert abs(dot(forward, up)) < 1e-9
        assert length(right) == pytest.approx(1.0)


class TestSceneLibrary:
    def test_all_sixteen_scenes_named(self):
        assert len(ALL_SCENES) == 16
        assert set(ALL_SCENES) == set(SCENE_TRIANGLE_BUDGET)

    def test_scene_names_order(self):
        assert scene_names()[0] == "WKND"

    @pytest.mark.parametrize("name", ["WKND", "SHIP", "BUNNY"])
    def test_small_scenes_build(self, name):
        scene = build_scene(name, scale=0.2)
        assert scene.triangle_count > 0
        assert scene.name == name

    def test_budget_roughly_respected(self):
        scene = build_scene("SPNZA", scale=0.5)
        budget = SCENE_TRIANGLE_BUDGET["SPNZA"] * 0.5
        assert scene.triangle_count >= 0.5 * budget

    def test_wknd_is_smallest(self):
        wknd = build_scene("WKND", scale=0.2)
        bunny = build_scene("BUNNY", scale=0.2)
        assert wknd.triangle_count < bunny.triangle_count

    def test_unknown_scene_rejected(self):
        with pytest.raises(KeyError):
            build_scene("CITY17")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            build_scene("WKND", scale=0.0)

    def test_caching_returns_same_object(self):
        assert build_scene("WKND", 0.2) is build_scene("WKND", 0.2)

    def test_deterministic_across_cache_clear(self):
        import numpy as np
        from repro.scenes import library

        first = build_scene("SHIP", 0.3).mesh.vertices.copy()
        library._SCENE_CACHE.clear()
        second = build_scene("SHIP", 0.3).mesh.vertices
        assert np.array_equal(first, second)


class TestRayGen:
    @pytest.fixture(scope="class")
    def scene_and_bvh(self):
        scene = build_scene("WKND", scale=0.5)
        bvh = build_wide_bvh(scene.mesh.triangles(), name="WKND")
        return scene, bvh

    def test_primary_count(self, scene_and_bvh):
        scene, _ = scene_and_bvh
        rays = generate_primary_rays(scene.camera, RayGenConfig(8, 8))
        assert len(rays) == 64
        assert all(r.kind is RayKind.PRIMARY for r in rays)

    def test_secondary_rays_present(self, scene_and_bvh):
        scene, bvh = scene_and_bvh
        rays = generate_rays(scene.camera, bvh, RayGenConfig(8, 8, seed=1))
        kinds = {r.kind for r in rays}
        assert RayKind.SECONDARY in kinds
        assert RayKind.SHADOW in kinds
        assert len(rays) > 64

    def test_no_secondary_without_bvh(self, scene_and_bvh):
        scene, _ = scene_and_bvh
        rays = generate_rays(scene.camera, None, RayGenConfig(8, 8))
        assert len(rays) == 64

    def test_secondary_disabled(self, scene_and_bvh):
        scene, bvh = scene_and_bvh
        rays = generate_rays(
            scene.camera, bvh, RayGenConfig(8, 8, secondary=False)
        )
        assert len(rays) == 64

    def test_deterministic_given_seed(self, scene_and_bvh):
        scene, bvh = scene_and_bvh
        a = generate_rays(scene.camera, bvh, RayGenConfig(8, 8, seed=3))
        b = generate_rays(scene.camera, bvh, RayGenConfig(8, 8, seed=3))
        assert len(a) == len(b)
        assert all(
            ra.origin == rb.origin and ra.direction == rb.direction
            for ra, rb in zip(a, b)
        )

    def test_different_seeds_differ(self, scene_and_bvh):
        scene, bvh = scene_and_bvh
        a = generate_rays(scene.camera, bvh, RayGenConfig(8, 8, seed=3))
        b = generate_rays(scene.camera, bvh, RayGenConfig(8, 8, seed=4))
        secondary_a = [r for r in a if r.kind is RayKind.SECONDARY]
        secondary_b = [r for r in b if r.kind is RayKind.SECONDARY]
        assert any(
            ra.direction != rb.direction
            for ra, rb in zip(secondary_a, secondary_b)
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RayGenConfig(width=0, height=8)

    def test_bounce_directions_in_hemisphere(self, scene_and_bvh):
        """Secondary bounce rays leave the surface (don't tunnel into it)."""
        scene, bvh = scene_and_bvh
        from repro.traversal import traverse_dfs

        rays = generate_rays(scene.camera, bvh, RayGenConfig(8, 8, seed=2))
        secondaries = [r for r in rays if r.kind is RayKind.SECONDARY]
        assert secondaries
        # Each secondary origin should not be immediately self-shadowed.
        for ray in secondaries[:10]:
            trace = traverse_dfs(ray.clone(), bvh)
            if trace.hit is not None:
                assert trace.hit.t > 1e-4
