"""Acceptance tests for the scene-shard router and load scenarios.

A real fleet: N ``repro serve`` replica subprocesses fronted by a
``repro router`` subprocess, driven over TCP through the shared typed
client.  Covers the PR's contract:

* routed results are bit-identical to direct :mod:`repro.api` calls;
* sweeps are split per-scene across the owning replicas and merged
  deterministically;
* SIGKILLing a replica mid-run loses zero requests (retry failover),
  ejects the replica, and a replacement on the same port is readmitted;
* scene affinity keeps >= 80% of routed requests on the replica that
  already built the scene's artifacts;
* declarative scenario specs parse strictly and execute into
  ``repro.bench/1`` capacity reports.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.serve import (
    Scenario,
    ScenarioError,
    ServeClient,
    SubmitRequest,
    run_scenario,
)

ROOT = Path(__file__).resolve().parents[1]


def _spawn(cmd, *, expect="listening on"):
    """Start a repro subprocess and parse its announce line."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    env.pop("REPRO_CACHE_DIR", None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", *cmd],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    line = proc.stdout.readline()
    assert expect in line, f"unexpected announce line: {line!r}"
    port = int(line.rstrip().rstrip("/").rsplit(":", 1)[1])
    return proc, port


class Fleet:
    """N serve replicas behind one router, all real subprocesses."""

    def __init__(self, replicas: int = 2, router_args=()) -> None:
        self.procs = []
        self.replica_ports = []
        for _ in range(replicas):
            proc, port = _spawn(["serve", "--port", "0", "--no-cache"])
            self.procs.append(proc)
            self.replica_ports.append(port)
        args = ["router", "--port", "0"]
        for port in self.replica_ports:
            args += ["--replica", f"127.0.0.1:{port}"]
        self.router_proc, self.port = _spawn(args + list(router_args))
        self.procs.append(self.router_proc)

    @property
    def client(self) -> ServeClient:
        return ServeClient("127.0.0.1", self.port, timeout=60.0)

    def replica_client(self, index: int) -> ServeClient:
        return ServeClient("127.0.0.1", self.replica_ports[index],
                           timeout=60.0)

    def close(self) -> None:
        for proc in self.procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in self.procs:
            try:
                proc.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.communicate()


@pytest.fixture(scope="module")
def fleet():
    fleet = Fleet(replicas=2)
    yield fleet
    fleet.close()


class TestRouting:
    def test_healthz_reports_router_role_and_replicas(self, fleet):
        response = fleet.client.healthz()
        assert response.status == 200
        doc = response.document
        assert doc["role"] == "router"
        assert doc["healthy_replicas"] == 2
        assert set(doc["replicas"]) == {
            f"127.0.0.1:{port}" for port in fleet.replica_ports
        }

    def test_routed_run_bit_identical_to_direct_api(self, fleet):
        from repro.api import run as api_run
        from repro.api.techniques import parse_technique
        from repro.obs import simstats_to_dict

        response = fleet.client.submit(
            SubmitRequest(kind="run", scene="WKND",
                          technique="treelet-prefetch", scale="smoke"),
            wait=True,
        )
        assert response.status == 200
        doc = response.document
        assert doc["state"] == "done"
        assert doc["replica"] in {
            f"127.0.0.1:{port}" for port in fleet.replica_ports
        }
        direct = api_run("WKND", "treelet-prefetch", "smoke")
        expected = {
            "kind": "run",
            "scene": "WKND",
            "technique": parse_technique("treelet-prefetch").label(),
            "scale": "smoke",
            "cycles": direct.cycles,
            "stats": json.loads(json.dumps(simstats_to_dict(direct.stats))),
        }
        assert json.dumps(doc["result"], sort_keys=True) == json.dumps(
            expected, sort_keys=True
        )

    def test_sweep_splits_per_scene_and_merges(self, fleet):
        from repro.api import sweep as api_sweep

        scenes = ["WKND", "SHIP", "SPNZA"]
        response = fleet.client.submit(
            SubmitRequest(kind="sweep", scenes=tuple(scenes),
                          technique="treelet-prefetch", scale="smoke"),
            wait=True, timeout=300.0,
        )
        assert response.status == 200
        doc = response.document
        assert doc["state"] == "done"
        result = doc["result"]
        assert sorted(result["scenes"]) == sorted(scenes)
        direct = api_sweep("treelet-prefetch", scenes, "smoke")
        assert result["gmean_speedup"] == pytest.approx(
            direct.gmean_speedup
        )
        for scene, speedup in direct.speedups().items():
            assert result["scenes"][scene]["speedup"] == pytest.approx(
                speedup
            )

    def test_routed_job_lookup_and_trace(self, fleet):
        response = fleet.client.submit(
            SubmitRequest(kind="run", scene="SHIP", technique="baseline",
                          scale="smoke"),
            wait=True,
        )
        job_id = response.document["id"]
        lookup = fleet.client.job(job_id)
        assert lookup.status == 200
        assert lookup.document["state"] == "done"
        trace = fleet.client.trace(job_id)
        assert trace.status == 200
        assert trace.document["schema"] == "repro.spans/1"
        assert trace.document["spans"]

    def test_metrics_aggregates_and_exposes_router_counters(self, fleet):
        response = fleet.client.metrics()
        assert response.status == 200
        doc = response.document
        assert doc["schema"] == "repro.serve_metrics/1"
        assert doc["role"] == "router"
        aggregated = doc["aggregated"]["counters"]
        assert aggregated["serve.requests_total"] >= 1
        router_counters = doc["router"]["counters"]
        assert router_counters["router.routed_total"] >= 1
        assert set(doc["replicas"]) == {
            f"127.0.0.1:{port}" for port in fleet.replica_ports
        }
        # Prometheus exposition includes the router counters.
        prom = fleet.client.metrics(fmt="prometheus")
        assert prom.status == 200
        assert "repro_router_routed_total" in prom.document

    def test_validation_happens_at_the_edge(self, fleet):
        response = fleet.client.request(
            "POST", "/v1/run", {"scene": "CITY17", "scale": "smoke"}
        )
        assert response.status == 400
        assert "unknown scene" in response.document["error"]
        response = fleet.client.request(
            "POST", "/v1/run",
            {"scene": "WKND", "tecnique": "baseline"},
        )
        assert response.status == 400
        assert "did you mean 'technique'" in response.document["error"]

    def test_unknown_job_is_404(self, fleet):
        response = fleet.client.job("r999999")
        assert response.status == 404


class TestFailover:
    def test_sigkill_replica_mid_run_loses_nothing(self):
        """The headline acceptance test: 3 replicas, one SIGKILLed while
        traffic is flowing — every request still succeeds, the dead
        replica is ejected, a replacement on the same port is
        readmitted, and scene affinity stays >= 0.8."""
        fleet = Fleet(replicas=3)
        try:
            client = fleet.client
            scenario = Scenario.from_dict({
                "schema": "repro.scenario/1",
                "name": "failover",
                "arrival": "uniform",
                "qps": [25],
                "requests": 75,
                "seed": 3,
                "mix": [
                    {"scene": "WKND", "technique": "treelet-prefetch",
                     "scale": "smoke", "weight": 2},
                    {"scene": "SHIP", "technique": "treelet-prefetch",
                     "scale": "smoke", "weight": 1},
                    {"scene": "SPNZA", "technique": "baseline",
                     "scale": "smoke", "weight": 1},
                ],
                "slo": {"p99_latency_s": 60.0, "success_rate": 1.0},
            })

            victim = fleet.procs[0]
            victim_port = fleet.replica_ports[0]

            def assassin():
                time.sleep(1.0)  # mid-run: ~25 requests in
                victim.send_signal(signal.SIGKILL)

            killer = threading.Thread(target=assassin)
            killer.start()
            report = run_scenario(scenario, "127.0.0.1", fleet.port)
            killer.join()
            summary = report["metrics"]["qps_sweep"][0]

            assert summary["requests"] == 75
            assert summary["ok"] == 75, summary
            assert summary["errors"] == 0
            assert summary["slo_ok"] is True
            assert report["derived"]["slo_pass"] is True

            metrics = client.metrics().document
            router_counters = metrics["router"]["counters"]
            assert router_counters["router.ejections_total"] >= 1
            routed = router_counters["router.routed_total"]
            affinity = router_counters.get(
                "router.affinity_hits_total", 0
            )
            assert routed > 0
            assert affinity / routed >= 0.8, (affinity, routed)

            health = client.healthz().document
            assert health["healthy_replicas"] == 2
            assert health["replicas"][f"127.0.0.1:{victim_port}"][
                "healthy"
            ] is False

            # A replacement replica on the same port is readmitted.
            replacement, _port = _spawn(
                ["serve", "--port", str(victim_port), "--no-cache"]
            )
            fleet.procs.append(replacement)
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                health = client.healthz().document
                if health["healthy_replicas"] == 3:
                    break
                time.sleep(0.1)
            assert health["healthy_replicas"] == 3
            metrics = client.metrics().document
            assert metrics["router"]["counters"][
                "router.readmissions_total"
            ] >= 1

            # The recovered fleet serves traffic again, start to finish.
            response = client.submit(
                SubmitRequest(kind="run", scene="WKND",
                              technique="baseline", scale="smoke"),
                wait=True,
            )
            assert response.status == 200
            assert response.document["state"] == "done"
        finally:
            fleet.close()

    def test_all_replicas_down_is_502_not_hang(self):
        fleet = Fleet(replicas=1)
        try:
            fleet.procs[0].send_signal(signal.SIGKILL)
            fleet.procs[0].wait(timeout=10)
            response = fleet.client.submit(
                SubmitRequest(kind="run", scene="WKND",
                              technique="baseline", scale="smoke"),
                wait=True,
            )
            assert response.status in (502, 503)
            assert "replica" in response.document["error"]
        finally:
            fleet.close()


class TestScenarios:
    def test_scenario_runs_against_router(self, fleet):
        scenario = Scenario.from_dict({
            "schema": "repro.scenario/1",
            "name": "router-capacity",
            "arrival": "uniform",
            "qps": [8, 16],
            "requests": 10,
            "seed": 0,
            "mix": [
                {"scene": "WKND", "technique": "treelet-prefetch",
                 "scale": "smoke", "weight": 1},
                {"scene": "SHIP", "technique": "baseline",
                 "scale": "smoke", "weight": 1},
            ],
            "slo": {"p99_latency_s": 30.0, "success_rate": 1.0},
        })
        report = run_scenario(scenario, "127.0.0.1", fleet.port)
        assert report["schema"] == "repro.bench/1"
        assert report["phase"] == "scenario"
        assert report["target"]["role"] == "router"
        steps = report["metrics"]["qps_sweep"]
        assert len(steps) == 2
        assert all(step["ok"] == step["requests"] for step in steps)
        assert report["derived"]["slo_pass"] is True
        assert report["derived"]["capacity_qps"] == 16.0
        assert report["derived"]["levels_passed"] == 2

    def test_committed_smoke_spec_parses(self):
        scenario = Scenario.load(
            ROOT / "benchmarks" / "perf" / "scenarios" / "smoke.json"
        )
        assert scenario.name == "smoke-capacity"
        assert scenario.qps_levels == (4.0, 8.0, 16.0)
        assert len(scenario.mix) == 3
        assert scenario.slo.p99_latency_s == 5.0

    def test_yaml_spec_loads_when_pyyaml_present(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        spec = tmp_path / "scenario.yaml"
        spec.write_text(yaml.safe_dump({
            "schema": "repro.scenario/1",
            "name": "yaml-scenario",
            "qps": [4],
            "requests": 5,
            "mix": [{"scene": "WKND", "scale": "smoke"}],
        }))
        scenario = Scenario.load(spec)
        assert scenario.name == "yaml-scenario"
        assert scenario.qps_levels == (4.0,)

    def test_unknown_scenario_key_suggests_near_miss(self):
        with pytest.raises(ScenarioError, match="did you mean 'arrival'"):
            Scenario.from_dict({"arrivel": "poisson"})

    def test_unknown_arrival_process_is_rejected(self):
        with pytest.raises(ScenarioError,
                           match="unknown arrival process 'exponential'"):
            Scenario.from_dict({"arrival": "exponential"})

    def test_bad_slo_values_are_rejected(self):
        with pytest.raises(ScenarioError, match="success_rate"):
            Scenario.from_dict({"slo": {"success_rate": 1.5}})
        with pytest.raises(ScenarioError, match="p99_latency_s"):
            Scenario.from_dict({"slo": {"p99_latency_s": -1}})
        with pytest.raises(ScenarioError, match="did you mean"):
            Scenario.from_dict({"slo": {"p99_latency": 1.0}})

    def test_bad_qps_and_mix_are_rejected(self):
        with pytest.raises(ScenarioError, match="qps"):
            Scenario.from_dict({"qps": []})
        with pytest.raises(ScenarioError, match="qps"):
            Scenario.from_dict({"qps": [4, -2]})
        with pytest.raises(ScenarioError, match="mix"):
            Scenario.from_dict({"mix": []})
        with pytest.raises(ScenarioError, match="did you mean 'weight'"):
            Scenario.from_dict({"mix": [{"scene": "WKND", "wieght": 2}]})

    def test_wrong_schema_and_bad_json_are_rejected(self, tmp_path):
        with pytest.raises(ScenarioError, match="repro.scenario/1"):
            Scenario.from_dict({"schema": "repro.scenario/9"})
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ScenarioError, match="bad JSON"):
            Scenario.load(bad)
        with pytest.raises(ScenarioError, match="cannot read"):
            Scenario.load(tmp_path / "missing.json")
