"""Unit tests for AABB operations."""

import pytest

from repro.geometry import AABB, union_all


@pytest.fixture
def unit_box():
    return AABB((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))


class TestEmpty:
    def test_empty_is_empty(self):
        assert AABB.empty().is_empty()

    def test_empty_is_union_identity(self, unit_box):
        assert AABB.empty().union(unit_box) == unit_box
        assert unit_box.union(AABB.empty()) == unit_box

    def test_empty_has_zero_measures(self):
        empty = AABB.empty()
        assert empty.surface_area() == 0.0
        assert empty.volume() == 0.0
        assert empty.extent() == (0.0, 0.0, 0.0)

    def test_union_all_of_nothing_is_empty(self):
        assert union_all([]).is_empty()


class TestGrowUnion:
    def test_grow_contains_point(self, unit_box):
        grown = unit_box.grow((2.0, 0.5, 0.5))
        assert grown.contains_point((2.0, 0.5, 0.5))
        assert grown.contains_box(unit_box)

    def test_from_points_bounds_all(self):
        points = [(0.0, 0.0, 0.0), (1.0, 2.0, 3.0), (-1.0, 0.5, 1.0)]
        box = AABB.from_points(points)
        assert all(box.contains_point(p) for p in points)

    def test_union_is_commutative(self, unit_box):
        other = AABB((-1.0, -1.0, -1.0), (0.5, 0.5, 0.5))
        assert unit_box.union(other) == other.union(unit_box)

    def test_union_contains_both(self, unit_box):
        other = AABB((5.0, 5.0, 5.0), (6.0, 6.0, 6.0))
        u = unit_box.union(other)
        assert u.contains_box(unit_box) and u.contains_box(other)


class TestIntersection:
    def test_overlapping_boxes(self, unit_box):
        other = AABB((0.5, 0.5, 0.5), (2.0, 2.0, 2.0))
        inter = unit_box.intersection(other)
        assert inter == AABB((0.5, 0.5, 0.5), (1.0, 1.0, 1.0))
        assert unit_box.overlaps(other)

    def test_disjoint_boxes(self, unit_box):
        other = AABB((2.0, 2.0, 2.0), (3.0, 3.0, 3.0))
        assert unit_box.intersection(other).is_empty()
        assert not unit_box.overlaps(other)

    def test_touching_boxes_overlap(self, unit_box):
        other = AABB((1.0, 0.0, 0.0), (2.0, 1.0, 1.0))
        assert unit_box.overlaps(other)

    def test_empty_never_overlaps(self, unit_box):
        assert not AABB.empty().overlaps(unit_box)
        assert not unit_box.overlaps(AABB.empty())


class TestMeasures:
    def test_unit_cube_surface_area(self, unit_box):
        assert unit_box.surface_area() == pytest.approx(6.0)
        assert unit_box.half_area() == pytest.approx(3.0)

    def test_unit_cube_volume(self, unit_box):
        assert unit_box.volume() == pytest.approx(1.0)

    def test_centroid(self, unit_box):
        assert unit_box.centroid() == pytest.approx((0.5, 0.5, 0.5))

    def test_longest_axis(self):
        box = AABB((0.0, 0.0, 0.0), (1.0, 3.0, 2.0))
        assert box.longest_axis() == 1

    def test_expanded_adds_margin_on_all_faces(self, unit_box):
        grown = unit_box.expanded(0.5)
        assert grown.lo == pytest.approx((-0.5, -0.5, -0.5))
        assert grown.hi == pytest.approx((1.5, 1.5, 1.5))

    def test_expanded_empty_stays_empty(self):
        assert AABB.empty().expanded(1.0).is_empty()


class TestContainment:
    def test_contains_own_corners(self, unit_box):
        assert unit_box.contains_point(unit_box.lo)
        assert unit_box.contains_point(unit_box.hi)

    def test_contains_box_itself(self, unit_box):
        assert unit_box.contains_box(unit_box)

    def test_contains_empty_box(self, unit_box):
        assert unit_box.contains_box(AABB.empty())

    def test_does_not_contain_larger(self, unit_box):
        bigger = unit_box.expanded(0.1)
        assert not unit_box.contains_box(bigger)
        assert bigger.contains_box(unit_box)

    def test_union_all_matches_pairwise(self):
        boxes = [
            AABB((float(i), 0.0, 0.0), (float(i) + 1.0, 1.0, 1.0))
            for i in range(4)
        ]
        merged = union_all(boxes)
        assert merged == AABB((0.0, 0.0, 0.0), (4.0, 1.0, 1.0))
