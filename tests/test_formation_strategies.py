"""Unit tests for the alternative treelet formation strategies."""

import pytest

from repro.bvh import NODE_SIZE_BYTES
from repro.treelet import FORMATION_STRATEGIES, form_treelets


class TestAllStrategies:
    @pytest.mark.parametrize("strategy", FORMATION_STRATEGIES)
    def test_valid_decomposition(self, small_bvh, strategy):
        dec = form_treelets(small_bvh, 512, strategy)
        dec.validate()

    @pytest.mark.parametrize("strategy", FORMATION_STRATEGIES)
    def test_partition_complete(self, small_bvh, strategy):
        dec = form_treelets(small_bvh, 512, strategy)
        assert len(dec.assignment) == len(small_bvh)

    @pytest.mark.parametrize("strategy", FORMATION_STRATEGIES)
    def test_deterministic(self, small_bvh, strategy):
        a = form_treelets(small_bvh, 512, strategy)
        b = form_treelets(small_bvh, 512, strategy)
        assert [t.node_ids for t in a.treelets] == [
            t.node_ids for t in b.treelets
        ]

    def test_unknown_strategy_rejected(self, small_bvh):
        with pytest.raises(ValueError):
            form_treelets(small_bvh, 512, "random")


class TestStrategyShapes:
    def test_bfs_orders_by_depth(self, small_bvh):
        dec = form_treelets(small_bvh, 512, "bfs")
        for treelet in dec.treelets:
            depths = [small_bvh.node(n).depth for n in treelet.node_ids]
            assert depths == sorted(depths)

    def test_dfs_makes_deeper_treelets(self, small_bvh):
        """DFS fill follows one spine, reaching deeper levels per treelet
        than BFS fill for the same budget."""

        def max_span(dec):
            spans = []
            for treelet in dec.treelets:
                depths = [small_bvh.node(n).depth for n in treelet.node_ids]
                spans.append(max(depths) - min(depths))
            return max(spans)

        bfs = form_treelets(small_bvh, 512, "bfs")
        dfs = form_treelets(small_bvh, 512, "dfs")
        assert max_span(dfs) >= max_span(bfs)

    def test_sah_prefers_big_boxes(self, small_bvh):
        """SAH fill absorbs the largest-area frontier node first, so the
        root treelet's total area is at least BFS's."""
        bfs = form_treelets(small_bvh, 512, "bfs")
        sah = form_treelets(small_bvh, 512, "sah")

        def area(dec):
            return sum(
                small_bvh.node(n).bounds.surface_area()
                for n in dec.treelets[0].node_ids
            )

        assert area(sah) >= area(bfs) - 1e-9

    def test_strategies_agree_on_tiny_cap(self, small_bvh):
        """With one node per treelet, order does not matter: all
        strategies produce the same singleton partition."""
        decs = [
            form_treelets(small_bvh, NODE_SIZE_BYTES, s)
            for s in FORMATION_STRATEGIES
        ]
        for dec in decs:
            assert dec.treelet_count == len(small_bvh)
