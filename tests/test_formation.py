"""Unit tests for treelet formation (Section 3.1)."""

import pytest

from repro.bvh import NODE_SIZE_BYTES, build_wide_bvh
from repro.treelet import form_treelets

from conftest import make_triangles


class TestFormationBasics:
    def test_partition_covers_all_nodes(self, small_bvh, decomposition):
        covered = {
            node_id
            for treelet in decomposition.treelets
            for node_id in treelet.node_ids
        }
        assert covered == set(range(len(small_bvh)))

    def test_validate_passes(self, decomposition):
        decomposition.validate()

    def test_size_cap_respected(self, decomposition):
        for treelet in decomposition.treelets:
            assert treelet.size_bytes <= decomposition.max_bytes

    def test_first_treelet_rooted_at_bvh_root(self, small_bvh, decomposition):
        assert decomposition.treelets[0].root_id == small_bvh.ROOT_ID

    def test_treelets_are_connected(self, small_bvh, decomposition):
        for treelet in decomposition.treelets:
            members = set(treelet.node_ids)
            for node_id in treelet.node_ids:
                if node_id != treelet.root_id:
                    assert small_bvh.node(node_id).parent_id in members

    def test_bfs_order_within_treelet(self, small_bvh, decomposition):
        """Members are ordered by non-decreasing depth (upper levels first)."""
        for treelet in decomposition.treelets:
            depths = [small_bvh.node(n).depth for n in treelet.node_ids]
            assert depths == sorted(depths)

    def test_minimum_size_one_node(self, small_bvh):
        dec = form_treelets(small_bvh, NODE_SIZE_BYTES)
        assert dec.treelet_count == len(small_bvh)
        dec.validate()

    def test_rejects_sub_node_size(self, small_bvh):
        with pytest.raises(ValueError):
            form_treelets(small_bvh, NODE_SIZE_BYTES - 1)

    def test_whole_tree_in_one_treelet_when_size_huge(self, small_bvh):
        dec = form_treelets(small_bvh, len(small_bvh) * NODE_SIZE_BYTES)
        assert dec.treelet_count == 1
        dec.validate()


class TestFormationShape:
    def test_upper_treelets_fuller_than_average(self):
        """Greedy formation fills upper treelets close to the cap."""
        bvh = build_wide_bvh(make_triangles(300, seed=11), branching_factor=3)
        dec = form_treelets(bvh, 512)
        cap = dec.max_nodes_per_treelet
        assert dec.treelets[0].node_count == cap

    def test_smaller_cap_means_more_treelets(self, small_bvh):
        small = form_treelets(small_bvh, 256)
        large = form_treelets(small_bvh, 1024)
        assert small.treelet_count > large.treelet_count

    def test_child_same_treelet_bits(self, small_bvh, decomposition):
        for node in small_bvh.nodes:
            bits = decomposition.child_same_treelet_bits(node.node_id)
            assert len(bits) == node.fanout
            for bit, child_id in zip(bits, node.child_ids):
                assert bit == decomposition.same_treelet(
                    node.node_id, child_id
                )

    def test_occupancy_in_unit_range(self, decomposition):
        assert 0.0 < decomposition.occupancy() <= 1.0

    def test_same_treelet_is_reflexive(self, small_bvh, decomposition):
        assert decomposition.same_treelet(0, 0)


class TestValidationCatchesCorruption:
    def test_detects_double_membership(self, small_bvh):
        dec = form_treelets(small_bvh, 512)
        # Corrupt: duplicate one node into another treelet.
        if dec.treelet_count >= 2:
            from repro.treelet.formation import Treelet

            victim = dec.treelets[1]
            stolen = dec.treelets[0].node_ids[0]
            dec.treelets[1] = Treelet(
                victim.treelet_id,
                victim.root_id,
                victim.node_ids + (stolen,),
            )
            with pytest.raises(ValueError):
                dec.validate()

    def test_detects_oversized_treelet(self, small_bvh):
        dec = form_treelets(small_bvh, 512)
        dec.max_bytes = NODE_SIZE_BYTES  # shrink cap under existing treelets
        with pytest.raises(ValueError):
            dec.validate()
