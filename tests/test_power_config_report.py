"""Unit tests for the power model, GPU configs, and report helpers."""

import pytest

from repro.core import (
    banner,
    default_config,
    format_percent,
    format_series,
    format_table,
    geomean,
    paper_config,
    smoke_config,
)
from repro.core.config import GpuConfig, CacheConfig
from repro.gpusim.stats import SimStats
from repro.power import EnergyModel, PowerReport, evaluate_power


class TestEnergyModel:
    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(dram_access_energy=-1.0)

    def test_zero_activity_zero_dynamic(self):
        stats = SimStats(cycles=100)
        report = evaluate_power(stats)
        assert report.dynamic_energy == 0.0
        assert report.static_energy > 0.0

    def test_static_scales_with_cycles(self):
        model = EnergyModel(static_power_per_cycle=2.0)
        short = evaluate_power(SimStats(cycles=10), model)
        long = evaluate_power(SimStats(cycles=100), model)
        assert long.static_energy == 10 * short.static_energy

    def test_dram_dominates_sram(self):
        model = EnergyModel()
        assert model.dram_access_energy > model.l2_access_energy
        assert model.l2_access_energy > model.l1_access_energy

    def test_avg_power_definition(self):
        report = PowerReport(dynamic_energy=50.0, static_energy=50.0, cycles=10)
        assert report.avg_power == pytest.approx(10.0)
        assert report.total_energy == pytest.approx(100.0)

    def test_faster_same_traffic_saves_energy(self):
        slow = SimStats(cycles=1000)
        slow.visits_completed = 100
        fast = SimStats(cycles=500)
        fast.visits_completed = 100
        assert (
            evaluate_power(fast).total_energy
            < evaluate_power(slow).total_energy
        )


class TestConfigs:
    def test_paper_config_matches_table1(self):
        config = paper_config()
        assert config.n_sms == 8
        assert config.warp_size == 32
        assert config.warp_buffer_size == 16
        assert config.l1.size_bytes == 64 * 1024
        assert config.l1.associativity == 0  # fully associative
        assert config.l1.latency == 20
        assert config.l2.size_bytes == 3 * 1024 * 1024
        assert config.l2.associativity == 16
        assert config.l2.latency == 160
        assert config.dram.partitions == 4
        assert config.dram.partition_stride == 256

    def test_default_config_keeps_latencies(self):
        config = default_config()
        assert config.l1.latency == paper_config().l1.latency
        assert config.l2.latency == paper_config().l2.latency
        assert config.l1.size_bytes < paper_config().l1.size_bytes

    def test_smoke_config_is_tiny(self):
        assert smoke_config().l1.size_bytes <= 4096

    def test_line_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GpuConfig(
                l1=CacheConfig(size_bytes=1024, line_bytes=64),
                l2=CacheConfig(size_bytes=2048, line_bytes=128,
                               associativity=2),
            )

    def test_sm_count_validation(self):
        with pytest.raises(ValueError):
            GpuConfig(n_sms=0)


class TestReport:
    def test_geomean_basics(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1.5], ["bb", 20.25]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]
        assert "20.250" in lines[3]

    def test_format_series(self):
        out = format_series("title", {"a": 1.0, "bb": 2.0}, unit="x")
        assert out.startswith("title")
        assert "x" in out

    def test_format_percent(self):
        assert format_percent(0.321) == "+32.1%"
        assert format_percent(-0.037) == "-3.7%"

    def test_banner_contains_text(self):
        assert "hello" in banner("hello")
