"""Unit tests for the Figure 20 effectiveness classifier."""

import pytest

from repro.gpusim.cache import AccessOutcome, LineMeta
from repro.prefetch import EffectivenessCounts, PrefetchEffectivenessTracker


@pytest.fixture
def tracker():
    return PrefetchEffectivenessTracker()


class TestClassification:
    def test_timely(self, tracker):
        tracker.on_prefetch_probe(1, AccessOutcome.MISS, None, None)
        tracker.on_fill(1, filled_by_prefetch=True)
        tracker.on_demand_probe(
            1,
            AccessOutcome.HIT,
            LineMeta(filled_by_prefetch=True, demand_touched=False),
            None,
        )
        assert tracker.finalize().timely == 1

    def test_unused(self, tracker):
        tracker.on_prefetch_probe(1, AccessOutcome.MISS, None, None)
        tracker.on_fill(1, filled_by_prefetch=True)
        counts = tracker.finalize()
        assert counts.unused == 1

    def test_early(self, tracker):
        tracker.on_prefetch_probe(1, AccessOutcome.MISS, None, None)
        tracker.on_fill(1, filled_by_prefetch=True)
        tracker.on_eviction(
            1, LineMeta(filled_by_prefetch=True, demand_touched=False)
        )
        counts = tracker.finalize()
        assert counts.early == 1
        assert counts.unused == 0

    def test_late_prefetch_pending_on_demand(self, tracker):
        tracker.on_prefetch_probe(
            1, AccessOutcome.PENDING_HIT, None, prior_owner_is_prefetch=False
        )
        assert tracker.finalize().late == 1

    def test_late_demand_catches_prefetch(self, tracker):
        tracker.on_prefetch_probe(1, AccessOutcome.MISS, None, None)
        tracker.on_demand_probe(
            1, AccessOutcome.PENDING_HIT, None, prior_owner_is_prefetch=True
        )
        assert tracker.finalize().late == 1

    def test_too_late(self, tracker):
        tracker.on_prefetch_probe(
            1,
            AccessOutcome.HIT,
            LineMeta(filled_by_prefetch=False, demand_touched=True),
            None,
        )
        assert tracker.finalize().too_late == 1

    def test_redundant_prefetch_on_prefetched_line(self, tracker):
        tracker.on_prefetch_probe(
            1,
            AccessOutcome.HIT,
            LineMeta(filled_by_prefetch=True, demand_touched=False),
            None,
        )
        assert tracker.finalize().redundant == 1

    def test_redundant_merge_into_prefetch_fill(self, tracker):
        tracker.on_prefetch_probe(
            1, AccessOutcome.PENDING_HIT, None, prior_owner_is_prefetch=True
        )
        assert tracker.finalize().redundant == 1

    def test_second_demand_hit_not_double_counted(self, tracker):
        tracker.on_prefetch_probe(1, AccessOutcome.MISS, None, None)
        tracker.on_fill(1, filled_by_prefetch=True)
        meta = LineMeta(filled_by_prefetch=True, demand_touched=False)
        tracker.on_demand_probe(1, AccessOutcome.HIT, meta, None)
        touched = LineMeta(filled_by_prefetch=True, demand_touched=True)
        tracker.on_demand_probe(1, AccessOutcome.HIT, touched, None)
        assert tracker.finalize().timely == 1


class TestCounts:
    def test_issued_total(self):
        counts = EffectivenessCounts(
            timely=2, late=1, too_late=1, early=1, unused=3, redundant=2
        )
        assert counts.issued == 10

    def test_fractions_sum_to_one(self):
        counts = EffectivenessCounts(
            timely=2, late=1, too_late=1, early=1, unused=3, redundant=2
        )
        assert sum(counts.fractions().values()) == pytest.approx(1.0)

    def test_fractions_fold_redundant_into_unused(self):
        counts = EffectivenessCounts(unused=1, redundant=1, timely=2)
        assert counts.fractions()["unused"] == pytest.approx(0.5)

    def test_empty_fractions_are_zero(self):
        assert all(v == 0.0 for v in EffectivenessCounts().fractions().values())

    def test_merge(self):
        a = EffectivenessCounts(timely=1, late=2)
        b = EffectivenessCounts(timely=3, early=1)
        a.merge(b)
        assert a.timely == 4 and a.late == 2 and a.early == 1
