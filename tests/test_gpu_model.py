"""Integration-level tests for the GPU timing model."""

import pytest

from repro.bvh import dfs_layout
from repro.core.config import CacheConfig, GpuConfig
from repro.gpusim import GpuModel, SimulationLimitError
from repro.traversal import traverse_dfs_batch, traverse_two_stack_batch
from repro.treelet import treelet_layout
from repro.geometry import Ray


def tiny_config(**kw):
    defaults = dict(
        n_sms=2,
        warp_buffer_size=4,
        l1=CacheConfig(size_bytes=1024, line_bytes=128, latency=20),
        l2=CacheConfig(
            size_bytes=8 * 1024, line_bytes=128, associativity=8, latency=160
        ),
        max_cycles=500_000,
    )
    defaults.update(kw)
    return GpuConfig(**defaults)


def make_rays(n=40):
    return [
        Ray(
            origin=(0.0, 0.0, 12.0),
            direction=(0.04 * i - 0.8, 0.02 * i - 0.4, -1.0),
        )
        for i in range(n)
    ]


@pytest.fixture
def workload(small_bvh):
    traces = traverse_dfs_batch(make_rays(), small_bvh)
    return traces, small_bvh, dfs_layout(small_bvh)


class TestRun:
    def test_completes_all_visits(self, workload):
        traces, bvh, layout = workload
        model = GpuModel(tiny_config())
        model.load(traces, bvh, layout)
        stats = model.run()
        expected = sum(len(t.visits) for t in traces)
        assert stats.visits_completed == expected
        assert stats.cycles > 0

    def test_fast_forward_is_exact(self, small_bvh, decomposition):
        """Jumping over stalled stretches must not change a single
        cycle or counter — it is purely a host-time optimization."""
        from repro.prefetch import TreeletAddressMap, TreeletPrefetcher
        from repro.traversal import traverse_two_stack_batch
        from repro.treelet import treelet_layout

        rays = make_rays(48)
        traces = traverse_two_stack_batch(rays, small_bvh, decomposition)
        layout = treelet_layout(decomposition)
        config = tiny_config()
        address_map = TreeletAddressMap(
            decomposition, layout, config.l1.line_bytes
        )
        results = []
        for fast_forward in (True, False):
            model = GpuModel(
                config,
                scheduler_policy="pmr",
                prefetcher_factory=lambda sm: TreeletPrefetcher(address_map),
                enable_fast_forward=fast_forward,
            )
            model.load(traces, small_bvh, layout)
            results.append(model.run())
        fast, slow = results
        assert fast.cycles == slow.cycles
        assert fast.visits_completed == slow.visits_completed
        assert fast.prefetches_issued == slow.prefetches_issued
        assert fast.l1.demand_hits == slow.l1.demand_hits
        assert fast.dram_accesses == slow.dram_accesses
        assert fast.stall_cycles == slow.stall_cycles
        assert fast.busy_cycles == slow.busy_cycles

    def test_deterministic(self, workload):
        traces, bvh, layout = workload
        runs = []
        for _ in range(2):
            model = GpuModel(tiny_config())
            model.load(traces, bvh, layout)
            runs.append(model.run().cycles)
        assert runs[0] == runs[1]

    def test_warp_distribution(self, workload):
        traces, bvh, layout = workload
        model = GpuModel(tiny_config())
        n_warps = model.load(traces, bvh, layout)
        nonempty = [t for t in traces if t.visits]
        assert n_warps == (len(nonempty) + 31) // 32

    def test_more_sms_is_not_slower(self, workload):
        traces, bvh, layout = workload
        cycles = {}
        for n_sms in (1, 2):
            model = GpuModel(tiny_config(n_sms=n_sms))
            model.load(traces, bvh, layout)
            cycles[n_sms] = model.run().cycles
        assert cycles[2] <= cycles[1]

    def test_latency_stats_populated(self, workload):
        traces, bvh, layout = workload
        model = GpuModel(tiny_config())
        model.load(traces, bvh, layout)
        stats = model.run()
        assert stats.avg_node_demand_latency >= 20  # at least L1 latency
        assert stats.dram_accesses > 0

    def test_bigger_l1_reduces_misses(self, workload):
        traces, bvh, layout = workload
        misses = {}
        for size in (512, 8192):
            config = tiny_config(
                l1=CacheConfig(size_bytes=size, line_bytes=128, latency=20)
            )
            model = GpuModel(config)
            model.load(traces, bvh, layout)
            misses[size] = model.run().l1.demand_misses
        assert misses[8192] <= misses[512]

    def test_max_cycles_guard(self, workload):
        traces, bvh, layout = workload
        model = GpuModel(tiny_config(max_cycles=5))
        model.load(traces, bvh, layout)
        with pytest.raises(SimulationLimitError):
            model.run()

    def test_empty_workload(self, small_bvh):
        model = GpuModel(tiny_config())
        model.load([], small_bvh, dfs_layout(small_bvh))
        stats = model.run()
        assert stats.visits_completed == 0


class TestSchedulerPolicies:
    @pytest.mark.parametrize("policy", ["baseline", "omr", "pmr"])
    def test_all_policies_complete(self, small_bvh, decomposition, policy):
        rays = make_rays()
        traces = traverse_two_stack_batch(rays, small_bvh, decomposition)
        layout = treelet_layout(decomposition)
        model = GpuModel(tiny_config(), scheduler_policy=policy)
        model.load(traces, bvh=small_bvh, layout=layout)
        stats = model.run()
        assert stats.visits_completed == sum(len(t.visits) for t in traces)


class TestIpcProxy:
    def test_ipc_definition(self, workload):
        traces, bvh, layout = workload
        model = GpuModel(tiny_config())
        model.load(traces, bvh, layout)
        stats = model.run()
        assert stats.ipc == pytest.approx(
            stats.visits_completed / stats.cycles
        )

    def test_l1_breakdown_sums_to_one(self, workload):
        traces, bvh, layout = workload
        model = GpuModel(tiny_config())
        model.load(traces, bvh, layout)
        stats = model.run()
        breakdown = stats.l1_breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
