"""Unit tests for node layouts and tree statistics."""

import pytest

from repro.bvh import (
    BVH_BASE_ADDRESS,
    NODE_SIZE_BYTES,
    PRIMITIVE_SIZE_BYTES,
    compute_tree_stats,
    dfs_layout,
    nodes_per_level,
)


class TestDfsLayout:
    def test_all_nodes_have_addresses(self, small_bvh):
        layout = dfs_layout(small_bvh)
        assert len(layout.node_address) == len(small_bvh)

    def test_addresses_unique_and_aligned(self, small_bvh):
        layout = dfs_layout(small_bvh)
        addrs = list(layout.node_address.values())
        assert len(set(addrs)) == len(addrs)
        assert all(a % NODE_SIZE_BYTES == 0 for a in addrs)

    def test_root_at_base(self, small_bvh):
        layout = dfs_layout(small_bvh)
        assert layout.address_of(small_bvh.ROOT_ID) == BVH_BASE_ADDRESS

    def test_depth_first_contiguity(self, small_bvh):
        """A node's first child sits immediately after it in memory."""
        layout = dfs_layout(small_bvh)
        for node in small_bvh.nodes:
            if node.child_ids:
                first_child = node.child_ids[0]
                assert (
                    layout.address_of(first_child)
                    == layout.address_of(node.node_id) + NODE_SIZE_BYTES
                )

    def test_primitive_region_follows_nodes(self, small_bvh):
        layout = dfs_layout(small_bvh)
        assert (
            layout.primitive_base
            == BVH_BASE_ADDRESS + len(small_bvh) * NODE_SIZE_BYTES
        )
        assert layout.primitive_address(3) == (
            layout.primitive_base + 3 * PRIMITIVE_SIZE_BYTES
        )

    def test_treelet_of_defaults_to_minus_one(self, small_bvh):
        layout = dfs_layout(small_bvh)
        assert layout.treelet_of(small_bvh.ROOT_ID) == -1


class TestTreeStats:
    def test_counts_add_up(self, small_bvh):
        stats = compute_tree_stats(small_bvh)
        assert stats.node_count == len(small_bvh)
        assert stats.leaf_count == len(small_bvh.leaf_ids())
        assert stats.triangle_count == len(small_bvh.triangles)

    def test_size_includes_nodes_and_primitives(self, small_bvh):
        stats = compute_tree_stats(small_bvh)
        expected = (
            len(small_bvh) * NODE_SIZE_BYTES
            + len(small_bvh.triangles) * PRIMITIVE_SIZE_BYTES
        )
        assert stats.size_bytes == expected
        assert stats.size_mb == pytest.approx(expected / 2**20)

    def test_avg_leaf_primitives(self, small_bvh):
        stats = compute_tree_stats(small_bvh)
        total = sum(
            len(n.primitive_ids) for n in small_bvh.nodes if n.is_leaf
        )
        assert stats.avg_leaf_primitives == pytest.approx(
            total / stats.leaf_count
        )

    def test_nodes_per_level_sums_to_total(self, small_bvh):
        histogram = nodes_per_level(small_bvh)
        assert sum(histogram.values()) == len(small_bvh)
        assert histogram[0] == 1  # exactly one root


class TestSahCost:
    def test_sah_builder_beats_median(self):
        """The metric must agree that the SAH builder builds the
        cheaper tree on clustered input."""
        from repro.bvh import BuildConfig, build_wide_bvh, sah_cost
        from conftest import make_triangles

        tris = make_triangles(300, seed=13)
        sah_tree = build_wide_bvh(tris, BuildConfig(strategy="sah"))
        median_tree = build_wide_bvh(tris, BuildConfig(strategy="median"))
        assert sah_cost(sah_tree) <= sah_cost(median_tree) * 1.05

    def test_cost_positive_and_finite(self, small_bvh):
        from repro.bvh import sah_cost

        cost = sah_cost(small_bvh)
        assert cost > 0.0
        assert cost < 1e9

    def test_higher_intersection_cost_raises_total(self, small_bvh):
        from repro.bvh import sah_cost

        cheap = sah_cost(small_bvh, intersection_cost=1.0)
        expensive = sah_cost(small_bvh, intersection_cost=10.0)
        assert expensive > cheap

    def test_single_leaf_tree_cost(self):
        from repro.bvh import build_wide_bvh, sah_cost
        from conftest import make_triangles

        tris = make_triangles(2)
        bvh = build_wide_bvh(tris)
        # One leaf holding n prims at probability 1.
        if bvh.root.is_leaf:
            assert sah_cost(bvh, intersection_cost=1.5) == (
                1.5 * len(bvh.root.primitive_ids)
            )
