"""Unit tests for the terminal chart helpers."""

import pytest

from repro.analysis import bar_chart, comparison_summary, sparkline, stacked_chart


class TestBarChart:
    def test_longest_bar_is_max(self):
        out = bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = out.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_labels_aligned(self):
        out = bar_chart({"x": 1.0, "long": 1.0})
        lines = out.splitlines()
        assert lines[0].index("#") == lines[1].index("#")

    def test_baseline_marker_present(self):
        out = bar_chart({"a": 2.0}, width=10, baseline=1.0)
        assert "|" in out

    def test_values_printed(self):
        out = bar_chart({"a": 1.234}, unit="x")
        assert "1.234x" in out

    def test_empty_series(self):
        assert "empty" in bar_chart({})

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})

    def test_tiny_width_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({"a": 1.0}, width=2)


class TestStackedChart:
    def test_widths_proportional(self):
        out = stacked_chart(
            {"row": {"x": 0.5, "y": 0.5}}, buckets=["x", "y"], width=20
        )
        body = out.splitlines()[0]
        assert body.count("#") == 10
        assert body.count("=") == 10

    def test_legend_lists_buckets(self):
        out = stacked_chart(
            {"row": {"x": 1.0}}, buckets=["x"], width=10
        )
        assert "#=x" in out

    def test_too_many_buckets_rejected(self):
        with pytest.raises(ValueError):
            stacked_chart({"r": {}}, buckets=list("abcdefgh"))

    def test_empty(self):
        assert "empty" in stacked_chart({}, buckets=["x"])


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([1.0, 2.0, 3.0, 4.0])
        assert len(line) == 4
        assert line[0] == "." and line[-1] == "@"

    def test_flat_series(self):
        assert sparkline([2.0, 2.0, 2.0]) == "..."

    def test_empty(self):
        assert sparkline([]) == ""


class TestComparison:
    def test_shared_keys_rendered(self):
        out = comparison_summary({"a": 1.3, "b": 2.0}, {"a": 1.32})
        assert "measured" in out and "paper" in out
        assert "b" not in out

    def test_no_overlap(self):
        assert "no overlapping" in comparison_summary({"a": 1.0}, {"b": 2.0})
