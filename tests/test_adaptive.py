"""Unit tests for the adaptive prefetch throttle (Section 7.1)."""

import pytest

from repro import SMOKE, Technique, run_experiment
from repro.prefetch import AdaptiveConfig, AdaptiveThrottle, EffectivenessCounts


def counts(timely=0, late=0, too_late=0, early=0, unused=0):
    return EffectivenessCounts(
        timely=timely, late=late, too_late=too_late, early=early,
        unused=unused,
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(epoch_cycles=0)
        with pytest.raises(ValueError):
            AdaptiveConfig(step=0.0)
        with pytest.raises(ValueError):
            AdaptiveConfig(min_threshold=0.5, max_threshold=0.25)


class TestController:
    def test_starts_wide_open(self):
        throttle = AdaptiveThrottle()
        assert throttle.threshold == 0.0
        assert throttle.fraction_to_prefetch(0.01) == 1.0

    def test_wasted_epoch_raises_threshold(self):
        throttle = AdaptiveThrottle(AdaptiveConfig(epoch_cycles=10))
        throttle.on_cycle(10, counts(unused=8, timely=2))
        assert throttle.threshold > 0.0
        assert throttle.adjustments == 1

    def test_useful_epoch_lowers_threshold(self):
        config = AdaptiveConfig(epoch_cycles=10, step=0.25)
        throttle = AdaptiveThrottle(config)
        throttle.on_cycle(10, counts(unused=8, timely=2))  # up
        high = throttle.threshold
        throttle.on_cycle(20, counts(unused=8, timely=12))  # delta mostly timely
        assert throttle.threshold < high

    def test_threshold_clamped(self):
        config = AdaptiveConfig(epoch_cycles=10, step=0.5, max_threshold=0.75)
        throttle = AdaptiveThrottle(config)
        total = counts()
        for epoch in range(1, 6):
            total = counts(unused=10 * epoch)  # always wasted
            throttle.on_cycle(epoch * 10, total)
        assert throttle.threshold == 0.75

    def test_no_activity_no_change(self):
        throttle = AdaptiveThrottle(AdaptiveConfig(epoch_cycles=10))
        throttle.on_cycle(10, counts())
        throttle.on_cycle(20, counts())
        assert throttle.threshold == 0.0
        assert throttle.adjustments == 0

    def test_between_epochs_no_change(self):
        throttle = AdaptiveThrottle(AdaptiveConfig(epoch_cycles=100))
        throttle.on_cycle(50, counts(unused=100))
        assert throttle.adjustments == 0

    def test_deltas_not_cumulative(self):
        """The controller reacts to per-epoch deltas, not lifetime totals."""
        config = AdaptiveConfig(epoch_cycles=10, step=0.25)
        throttle = AdaptiveThrottle(config)
        # Epoch 1: wasteful history.
        throttle.on_cycle(10, counts(unused=100))
        up = throttle.threshold
        # Epoch 2: only timely activity since.
        throttle.on_cycle(20, counts(unused=100, timely=50))
        assert throttle.threshold < up

    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            AdaptiveThrottle().fraction_to_prefetch(2.0)

    def test_label_shows_threshold(self):
        assert "ADAPTIVE" in AdaptiveThrottle().label()


class TestIntegration:
    def test_adaptive_technique_runs(self):
        technique = Technique(
            traversal="treelet", layout="treelet", prefetch="treelet",
            adaptive=True,
        )
        result = run_experiment("SHIP", technique, SMOKE)
        assert result.cycles > 0

    def test_adaptive_requires_treelet_prefetch(self):
        with pytest.raises(ValueError):
            Technique(adaptive=True)

    def test_adaptive_throttles_relative_to_always(self):
        always = Technique(
            traversal="treelet", layout="treelet", prefetch="treelet"
        )
        adaptive = Technique(
            traversal="treelet", layout="treelet", prefetch="treelet",
            adaptive=True,
        )
        a = run_experiment("BUNNY", always, SMOKE)
        b = run_experiment("BUNNY", adaptive, SMOKE)
        # The throttle can only reduce (or match) issued prefetches.
        assert b.stats.prefetches_issued <= a.stats.prefetches_issued
