"""Unit tests for the cache tag/MSHR model."""

import pytest

from repro.core.config import CacheConfig
from repro.gpusim import AccessOutcome, Cache


def tiny_cache(lines=4, assoc=0):
    return Cache(
        CacheConfig(
            size_bytes=lines * 128, line_bytes=128, associativity=assoc
        )
    )


class TestProbeOutcomes:
    def test_cold_miss(self):
        cache = tiny_cache()
        assert cache.probe(1, is_prefetch=False) is AccessOutcome.MISS
        assert cache.stats.demand_misses == 1

    def test_hit_after_fill(self):
        cache = tiny_cache()
        cache.probe(1, is_prefetch=False)
        cache.fill(1, cycle=10)
        assert cache.probe(1, is_prefetch=False) is AccessOutcome.HIT
        assert cache.stats.demand_hits == 1

    def test_pending_hit_while_in_flight(self):
        cache = tiny_cache()
        cache.probe(1, is_prefetch=False)
        outcome = cache.probe(1, is_prefetch=False)
        assert outcome is AccessOutcome.PENDING_HIT
        assert cache.stats.demand_pending_hits == 1

    def test_fill_returns_all_waiters(self):
        cache = tiny_cache()
        seen = []
        cache.probe(1, is_prefetch=False, waiter=lambda c: seen.append("a"))
        cache.probe(1, is_prefetch=False, waiter=lambda c: seen.append("b"))
        waiters = cache.fill(1, cycle=5)
        for w in waiters:
            w(5)
        assert seen == ["a", "b"]

    def test_line_of_uses_line_bytes(self):
        cache = tiny_cache()
        assert cache.line_of(0) == 0
        assert cache.line_of(127) == 0
        assert cache.line_of(128) == 1


class TestLru:
    def test_eviction_order_is_lru(self):
        cache = tiny_cache(lines=2)
        for line in (1, 2):
            cache.probe(line, is_prefetch=False)
            cache.fill(line, cycle=0)
        cache.probe(1, is_prefetch=False)  # touch 1; 2 becomes LRU
        cache.probe(3, is_prefetch=False)
        cache.fill(3, cycle=1)
        assert cache.contains(1)
        assert not cache.contains(2)
        assert cache.contains(3)

    def test_eviction_listener_called(self):
        cache = tiny_cache(lines=1)
        evicted = []
        cache.eviction_listener = lambda line, meta: evicted.append(line)
        for line in (1, 2):
            cache.probe(line, is_prefetch=False)
            cache.fill(line, cycle=0)
        assert evicted == [1]

    def test_set_associative_isolation(self):
        # 4 lines, 2-way: lines 0 and 2 share set 0; 1 and 3 share set 1.
        cache = tiny_cache(lines=4, assoc=2)
        for line in (0, 2, 4):  # all map to set 0
            cache.probe(line, is_prefetch=False)
            cache.fill(line, cycle=0)
        assert not cache.contains(0)  # evicted by 4
        assert cache.contains(2) and cache.contains(4)
        cache.probe(1, is_prefetch=False)
        cache.fill(1, cycle=0)
        assert cache.contains(1)  # other set untouched


class TestPrefetchAttribution:
    def test_prefetch_fill_tagged(self):
        cache = tiny_cache()
        cache.probe(1, is_prefetch=True)
        cache.fill(1, cycle=0)
        assert cache.line_meta(1).filled_by_prefetch

    def test_demand_merge_takes_ownership(self):
        cache = tiny_cache()
        cache.probe(1, is_prefetch=True)
        assert cache.mshr_owner_is_prefetch(1) is True
        cache.probe(1, is_prefetch=False)
        assert cache.mshr_owner_is_prefetch(1) is False
        assert cache.stats.demand_pending_on_prefetch == 1
        cache.fill(1, cycle=0)
        assert not cache.line_meta(1).filled_by_prefetch

    def test_demand_hit_on_prefetched_line_counted_once(self):
        cache = tiny_cache()
        cache.probe(1, is_prefetch=True)
        cache.fill(1, cycle=0)
        cache.probe(1, is_prefetch=False)
        cache.probe(1, is_prefetch=False)
        assert cache.stats.demand_hits_on_prefetched == 1
        assert cache.stats.demand_hits == 2

    def test_unused_prefetched_eviction_counted(self):
        cache = tiny_cache(lines=1)
        cache.probe(1, is_prefetch=True)
        cache.fill(1, cycle=0)
        cache.probe(2, is_prefetch=False)
        cache.fill(2, cycle=1)
        assert cache.stats.prefetched_evicted_unused == 1


class TestMshr:
    def test_mshr_full_detection(self):
        config = CacheConfig(size_bytes=512, line_bytes=128, mshr_entries=2)
        cache = Cache(config)
        cache.probe(1, is_prefetch=False)
        assert not cache.mshr_full()
        cache.probe(2, is_prefetch=False)
        assert cache.mshr_full()
        cache.fill(1, cycle=0)
        assert not cache.mshr_full()

    def test_flush_rejected_with_inflight_fills(self):
        cache = tiny_cache()
        cache.probe(1, is_prefetch=False)
        with pytest.raises(RuntimeError):
            cache.flush()

    def test_flush_empties_cache(self):
        cache = tiny_cache()
        cache.probe(1, is_prefetch=False)
        cache.fill(1, cycle=0)
        cache.flush()
        assert not cache.contains(1)


class TestConfigValidation:
    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=100, line_bytes=128)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0)

    def test_assoc_must_divide_lines(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=3 * 128, line_bytes=128, associativity=2)

    def test_fully_assoc_geometry(self):
        config = CacheConfig(size_bytes=1024, line_bytes=128, associativity=0)
        assert config.n_lines == 8
        assert config.n_sets == 1
