"""Unit tests for the L1 -> L2 -> DRAM request path."""

import pytest

from repro.core.config import CacheConfig, DramConfig, GpuConfig
from repro.gpusim import AccessOutcome, EventQueue, MemorySystem


def tiny_gpu_config(**kw):
    defaults = dict(
        n_sms=2,
        l1=CacheConfig(size_bytes=512, line_bytes=128, latency=20),
        l2=CacheConfig(
            size_bytes=2048, line_bytes=128, associativity=2, latency=160
        ),
        dram=DramConfig(latency=100, partitions=4, burst_cycles=4),
    )
    defaults.update(kw)
    return GpuConfig(**defaults)


@pytest.fixture
def memsys():
    events = EventQueue()
    return MemorySystem(tiny_gpu_config(), events), events


def run_until(events, limit=10_000):
    cycle = 0
    while len(events) and cycle < limit:
        nxt = events.next_cycle()
        events.run_due(nxt)
        cycle = nxt
    return cycle


class TestLatencies:
    def test_l1_hit_latency(self, memsys):
        mem, events = memsys
        # Prime the line.
        mem.access(0, 0x1000, cycle=0, callback=lambda c: None)
        run_until(events)
        done = []
        mem.access(0, 0x1000, cycle=1000, callback=done.append)
        run_until(events)
        assert done == [1020]  # L1 hit latency 20

    def test_l2_hit_latency(self, memsys):
        mem, events = memsys
        # SM 0 brings the line into L2 (and its own L1).
        mem.access(0, 0x1000, cycle=0, callback=lambda c: None)
        run_until(events)
        # SM 1 misses L1, hits L2.
        done = []
        mem.access(1, 0x1000, cycle=1000, callback=done.append)
        run_until(events)
        assert done == [1000 + 20 + 160]

    def test_dram_latency(self, memsys):
        mem, events = memsys
        done = []
        mem.access(0, 0x1000, cycle=0, callback=done.append)
        run_until(events)
        # L1 tag 20 + L2 tag 160 + burst 4 + dram 100 = 284.
        assert done == [284]

    def test_latency_stats_recorded(self, memsys):
        mem, events = memsys
        mem.access(0, 0x1000, cycle=0, callback=lambda c: None)
        run_until(events)
        assert mem.node_demand_latency.count == 1
        assert mem.node_demand_latency.average == pytest.approx(284)

    def test_primitive_region_not_in_node_latency(self, memsys):
        mem, events = memsys
        mem.access(
            0, 0x9000, cycle=0, region="primitive", callback=lambda c: None
        )
        run_until(events)
        assert mem.node_demand_latency.count == 0
        assert mem.all_demand_latency.count == 1


class TestMerging:
    def test_pending_demands_merge(self, memsys):
        mem, events = memsys
        done = []
        mem.access(0, 0x1000, cycle=0, callback=lambda c: done.append(("a", c)))
        mem.access(0, 0x1000, cycle=5, callback=lambda c: done.append(("b", c)))
        run_until(events)
        assert len(done) == 2
        assert done[0][1] == done[1][1]  # same fill services both

    def test_cross_sm_l2_merge(self, memsys):
        mem, events = memsys
        done = []
        mem.access(0, 0x1000, cycle=0, callback=lambda c: done.append(0))
        mem.access(1, 0x1000, cycle=0, callback=lambda c: done.append(1))
        run_until(events)
        assert sorted(done) == [0, 1]
        assert mem.dram.stats.accesses == 1  # one DRAM fill for both

    def test_l1s_are_private(self, memsys):
        mem, events = memsys
        mem.access(0, 0x1000, cycle=0, callback=lambda c: None)
        run_until(events)
        outcome = mem.access(1, 0x1000, cycle=500, callback=lambda c: None)
        assert outcome is AccessOutcome.MISS


class TestPrefetchPath:
    def test_prefetch_counts_separately(self, memsys):
        mem, events = memsys
        mem.access(0, 0x1000, cycle=0, is_prefetch=True)
        run_until(events)
        assert mem.l1s[0].stats.prefetch_accesses == 1
        assert mem.l2_traffic.prefetch_accesses == 1
        assert mem.l2_traffic.demand_accesses == 0

    def test_prefetch_does_not_record_demand_latency(self, memsys):
        mem, events = memsys
        mem.access(0, 0x1000, cycle=0, is_prefetch=True)
        run_until(events)
        assert mem.all_demand_latency.count == 0

    def test_demand_after_prefetch_hits(self, memsys):
        mem, events = memsys
        mem.access(0, 0x1000, cycle=0, is_prefetch=True)
        run_until(events)
        done = []
        mem.access(0, 0x1000, cycle=1000, callback=done.append)
        run_until(events)
        assert done == [1020]
        counts = mem.finalize()
        assert counts.timely == 1

    def test_effectiveness_late_when_demand_catches_prefetch(self, memsys):
        mem, events = memsys
        mem.access(0, 0x1000, cycle=0, is_prefetch=True)
        mem.access(0, 0x1000, cycle=5, callback=lambda c: None)
        run_until(events)
        counts = mem.finalize()
        assert counts.late == 1

    def test_effectiveness_unused_at_finalize(self, memsys):
        mem, events = memsys
        mem.access(0, 0x1000, cycle=0, is_prefetch=True)
        run_until(events)
        counts = mem.finalize()
        assert counts.unused == 1

    def test_too_late_prefetch(self, memsys):
        mem, events = memsys
        mem.access(0, 0x1000, cycle=0, callback=lambda c: None)
        run_until(events)
        mem.access(0, 0x1000, cycle=1000, is_prefetch=True)
        run_until(events)
        counts = mem.finalize()
        assert counts.too_late == 1


class TestBookkeeping:
    def test_l2_bytes_counts_all_arrivals(self, memsys):
        mem, events = memsys
        mem.access(0, 0x1000, cycle=0, callback=lambda c: None)
        mem.access(0, 0x2000, cycle=0, is_prefetch=True)
        run_until(events)
        assert mem.l2_traffic.total_bytes == 2 * 128

    def test_drain_complete(self, memsys):
        mem, events = memsys
        mem.access(0, 0x1000, cycle=0, callback=lambda c: None)
        assert not mem.drain_complete()
        run_until(events)
        assert mem.drain_complete()

    def test_can_accept_tracks_mshrs(self):
        events = EventQueue()
        config = tiny_gpu_config(
            l1=CacheConfig(
                size_bytes=512, line_bytes=128, latency=20, mshr_entries=1
            )
        )
        mem = MemorySystem(config, events)
        assert mem.can_accept(0)
        mem.access(0, 0x1000, cycle=0, callback=lambda c: None)
        assert not mem.can_accept(0)
