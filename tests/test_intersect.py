"""Unit tests for ray/AABB and ray/triangle intersection."""

import pytest

from repro.geometry import AABB, Ray, Triangle
from repro.traversal import ray_aabb_test, ray_triangle_test


def ray(origin, direction, **kw):
    return Ray(origin=origin, direction=direction, **kw)


class TestRayAabb:
    BOX = AABB((-1.0, -1.0, -1.0), (1.0, 1.0, 1.0))

    def test_head_on_hit(self):
        overlap = ray_aabb_test(ray((0.0, 0.0, 5.0), (0.0, 0.0, -1.0)), self.BOX)
        assert overlap is not None
        t_enter, t_exit = overlap
        assert t_enter == pytest.approx(4.0)
        assert t_exit == pytest.approx(6.0)

    def test_miss_to_the_side(self):
        assert ray_aabb_test(
            ray((5.0, 0.0, 5.0), (0.0, 0.0, -1.0)), self.BOX
        ) is None

    def test_origin_inside_box(self):
        overlap = ray_aabb_test(ray((0.0, 0.0, 0.0), (1.0, 0.0, 0.0)), self.BOX)
        assert overlap is not None
        assert overlap[0] == pytest.approx(1e-4)  # clamped to t_min

    def test_box_behind_ray(self):
        assert ray_aabb_test(
            ray((0.0, 0.0, 5.0), (0.0, 0.0, 1.0)), self.BOX
        ) is None

    def test_t_max_prunes(self):
        r = ray((0.0, 0.0, 5.0), (0.0, 0.0, -1.0), t_max=3.0)
        assert ray_aabb_test(r, self.BOX) is None

    def test_axis_parallel_ray_inside_slab(self):
        r = ray((0.5, 0.5, 5.0), (0.0, 0.0, -1.0))
        assert ray_aabb_test(r, self.BOX) is not None

    def test_axis_parallel_ray_outside_slab(self):
        r = ray((2.0, 0.5, 5.0), (0.0, 0.0, -1.0))
        assert ray_aabb_test(r, self.BOX) is None

    def test_empty_box_never_hit(self):
        assert ray_aabb_test(
            ray((0.0, 0.0, 5.0), (0.0, 0.0, -1.0)), AABB.empty()
        ) is None

    def test_diagonal_hit(self):
        r = ray((2.0, 2.0, 2.0), (-1.0, -1.0, -1.0))
        overlap = ray_aabb_test(r, self.BOX)
        assert overlap is not None

    def test_grazing_face_plane_with_parallel_axis_misses(self):
        # The ray runs exactly along the box's top edge; the parallel-axis
        # slab degenerates to (-inf, 0] so the test conservatively misses.
        r = ray((-2.0, 1.0, 1.0), (1.0, 0.0, 0.0))
        assert ray_aabb_test(r, self.BOX) is None

    def test_just_inside_face_plane_hits(self):
        r = ray((-2.0, 1.0 - 1e-6, 1.0 - 1e-6), (1.0, 0.0, 0.0))
        assert ray_aabb_test(r, self.BOX) is not None


class TestRayTriangle:
    def test_center_hit(self, unit_triangle):
        r = ray((0.25, 0.25, 1.0), (0.0, 0.0, -1.0))
        hit = ray_triangle_test(r, unit_triangle)
        assert hit is not None
        assert hit.t == pytest.approx(1.0)
        assert hit.primitive_id == 0
        assert hit.point == pytest.approx((0.25, 0.25, 0.0))

    def test_miss_outside_edge(self, unit_triangle):
        r = ray((0.9, 0.9, 1.0), (0.0, 0.0, -1.0))
        assert ray_triangle_test(r, unit_triangle) is None

    def test_backface_hit_reported(self, unit_triangle):
        r = ray((0.25, 0.25, -1.0), (0.0, 0.0, 1.0))
        hit = ray_triangle_test(r, unit_triangle)
        assert hit is not None

    def test_parallel_ray_misses(self, unit_triangle):
        r = ray((0.0, 0.0, 1.0), (1.0, 0.0, 0.0))
        assert ray_triangle_test(r, unit_triangle) is None

    def test_hit_outside_t_range(self, unit_triangle):
        r = ray((0.25, 0.25, 1.0), (0.0, 0.0, -1.0), t_max=0.5)
        assert ray_triangle_test(r, unit_triangle) is None

    def test_t_min_blocks_near_hit(self, unit_triangle):
        r = ray((0.25, 0.25, 0.05), (0.0, 0.0, -1.0), t_min=0.1)
        assert ray_triangle_test(r, unit_triangle) is None

    def test_vertex_hit(self, unit_triangle):
        r = ray((0.0, 0.0, 1.0), (0.0, 0.0, -1.0))
        hit = ray_triangle_test(r, unit_triangle)
        assert hit is not None  # barycentric boundary inclusive

    def test_normal_points_consistently(self, unit_triangle):
        r = ray((0.25, 0.25, 1.0), (0.0, 0.0, -1.0))
        hit = ray_triangle_test(r, unit_triangle)
        assert hit.normal == pytest.approx((0.0, 0.0, 1.0))

    def test_closer_than_ordering(self, unit_triangle):
        near = ray_triangle_test(
            ray((0.25, 0.25, 1.0), (0.0, 0.0, -1.0)), unit_triangle
        )
        far_triangle = Triangle(
            (0.0, 0.0, -5.0), (1.0, 0.0, -5.0), (0.0, 1.0, -5.0), 1
        )
        far = ray_triangle_test(
            ray((0.25, 0.25, 1.0), (0.0, 0.0, -1.0)), far_triangle
        )
        assert near.closer_than(far)
        assert not far.closer_than(near)
        assert near.closer_than(None)
