"""Unit tests for multi-bounce ray generation."""

import pytest

from repro.bvh import build_wide_bvh
from repro.geometry import RayKind
from repro.scenes import RayGenConfig, build_scene, generate_rays


@pytest.fixture(scope="module")
def scene_and_bvh():
    """A camera *inside* a closed box: every bounce hits a wall, so
    multi-bounce generations never die out."""
    from repro.scenes import Camera, box

    mesh = box(center=(0.0, 0.0, 0.0), half_extents=(4.0, 4.0, 4.0))
    bvh = build_wide_bvh(mesh.triangles(), name="box-interior")
    camera = Camera(position=(0.0, 0.0, 0.5), look_at=(1.0, 0.2, 0.0))

    class SceneLike:
        pass

    scene = SceneLike()
    scene.camera = camera
    return scene, bvh


def count_kinds(rays):
    counts = {}
    for ray in rays:
        counts[ray.kind] = counts.get(ray.kind, 0) + 1
    return counts


class TestBounces:
    def test_zero_bounces_primary_only(self, scene_and_bvh):
        scene, bvh = scene_and_bvh
        rays = generate_rays(
            scene.camera, bvh, RayGenConfig(8, 8, bounces=0, seed=1)
        )
        assert len(rays) == 64
        assert count_kinds(rays) == {RayKind.PRIMARY: 64}

    def test_more_bounces_more_rays(self, scene_and_bvh):
        scene, bvh = scene_and_bvh
        one = generate_rays(
            scene.camera, bvh, RayGenConfig(8, 8, bounces=1, seed=1)
        )
        three = generate_rays(
            scene.camera, bvh, RayGenConfig(8, 8, bounces=3, seed=1)
        )
        assert len(three) > len(one)

    def test_bounce_population_shrinks_per_generation(self, scene_and_bvh):
        """Each bounce generation can only lose rays (misses terminate)."""
        scene, bvh = scene_and_bvh
        rays = generate_rays(
            scene.camera, bvh,
            RayGenConfig(8, 8, bounces=4, shadow_rays=False, seed=2),
        )
        n_secondary = count_kinds(rays).get(RayKind.SECONDARY, 0)
        n_primary = count_kinds(rays)[RayKind.PRIMARY]
        assert n_secondary <= 4 * n_primary

    def test_shadow_rays_per_bounce(self, scene_and_bvh):
        scene, bvh = scene_and_bvh
        with_shadows = generate_rays(
            scene.camera, bvh, RayGenConfig(8, 8, bounces=2, seed=1)
        )
        kinds = count_kinds(with_shadows)
        # One shadow ray per spawned bounce ray.
        assert kinds.get(RayKind.SHADOW, 0) == kinds.get(RayKind.SECONDARY, 0)

    def test_negative_bounces_rejected(self):
        with pytest.raises(ValueError):
            RayGenConfig(8, 8, bounces=-1)

    def test_deterministic(self, scene_and_bvh):
        scene, bvh = scene_and_bvh
        a = generate_rays(
            scene.camera, bvh, RayGenConfig(8, 8, bounces=2, seed=9)
        )
        b = generate_rays(
            scene.camera, bvh, RayGenConfig(8, 8, bounces=2, seed=9)
        )
        assert len(a) == len(b)
        assert all(
            ra.origin == rb.origin and ra.direction == rb.direction
            for ra, rb in zip(a, b)
        )
