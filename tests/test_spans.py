"""Unit tests for repro.obs.spans: the cross-process tracing layer.

Covers the span lifecycle (begin/end/record), contextvars propagation,
the shared no-op fast path, deterministic merging, Perfetto export
round-trips (satellite: nesting, pid/tid mapping, merge ordering),
span-file I/O, the ``repro.bench/1`` fold, exec worker shipping, and
the ``repro obs`` CLI.
"""

import json

import pytest

from repro.obs import spans as sp
from repro.obs.spans import (
    SPAN_SCHEMA,
    Span,
    SpanCollector,
    SpanContext,
    collect,
    load_spans,
    merge_spans,
    new_id,
    span,
    spans_to_bench,
    spans_to_chrome_trace,
    summarize_spans,
    write_spans,
)


def _mk(name, trace_id, span_id, start, end=None, parent=None,
        process="p", pid=1, **args):
    return Span(
        name=name, trace_id=trace_id, span_id=span_id,
        parent_id=parent, start_unix=start, end_unix=end,
        process=process, pid=pid, args=dict(args),
    )


class TestSpanBasics:
    def test_begin_end_lifecycle(self):
        collector = SpanCollector(process="t")
        span_ = collector.begin("work", args={"k": 1})
        assert span_.end_unix is None
        assert span_.cpu_s < 0  # sentinel: completed by end()
        collector.end(span_, state="done")
        assert span_.end_unix >= span_.start_unix
        assert span_.cpu_s >= 0.0
        assert span_.args == {"k": 1, "state": "done"}
        assert span_.dur_s == span_.end_unix - span_.start_unix

    def test_end_is_idempotent(self):
        collector = SpanCollector(process="t")
        span_ = collector.begin("w")
        collector.end(span_)
        first_end = span_.end_unix
        collector.end(span_, extra=1)
        assert span_.end_unix == first_end  # first close wins
        assert span_.args["extra"] == 1  # args still merge

    def test_begin_under_parent_joins_trace(self):
        collector = SpanCollector(process="t")
        root = collector.begin("root")
        child = collector.begin("child", parent=root.context)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id

    def test_record_synthesized_interval(self):
        collector = SpanCollector(process="t")
        parent = SpanContext(trace_id="tr", span_id="sp")
        span_ = collector.record("queue.wait", 10.0, 12.5, parent=parent)
        assert span_.trace_id == "tr" and span_.parent_id == "sp"
        assert span_.dur_s == pytest.approx(2.5)
        assert span_.cpu_s is None  # no CPU attribution for waits

    def test_max_spans_cap_counts_drops(self):
        collector = SpanCollector(process="t", max_spans=2)
        for index in range(5):
            collector.begin(f"s{index}")
        assert len(collector) == 2
        assert collector.dropped == 3

    def test_dict_round_trip(self):
        span_ = _mk("n", "tr", "id", 1.0, 2.0, parent="pp", detail="x")
        copy = Span.from_dict(json.loads(json.dumps(span_.to_dict())))
        assert copy == span_

    def test_context_round_trip_preserves_root_marker(self):
        root = SpanContext(trace_id="tr")  # span_id None = trace root
        assert SpanContext.from_dict(root.to_dict()) == root


class TestContextPropagation:
    def test_span_is_noop_when_inactive(self):
        assert sp.current_context() is None
        cm = span("anything", key=1)
        assert cm is sp._NOOP  # the shared instance: zero allocation
        with cm as live:
            assert live is None

    def test_collect_activates_and_nests(self):
        with collect(process="test", trace_id="tr0") as collector:
            with span("outer", layer=1) as outer:
                assert sp.current_context() == outer.context
                with span("inner") as inner:
                    assert inner.parent_id == outer.span_id
                    assert inner.trace_id == "tr0"
            # context restored after the block
            assert sp.current_context() == SpanContext("tr0", None)
        assert sp.current_context() is None
        names = [s.name for s in collector.snapshot()]
        assert names == ["outer", "inner"]  # begin order, both closed
        assert all(s.end_unix is not None for s in collector.snapshot())

    def test_exception_records_error_and_closes(self):
        with collect(process="test") as collector:
            with pytest.raises(RuntimeError):
                with span("boom"):
                    raise RuntimeError("kaput")
        (span_,) = collector.snapshot()
        assert span_.args["error"] == "RuntimeError: kaput"
        assert span_.end_unix is not None

    def test_activate_deactivate_restores_previous(self):
        collector = SpanCollector(process="a")
        token = sp.activate(collector, SpanContext("tr"))
        assert sp.active_collector() is collector
        inner = SpanCollector(process="b")
        inner_token = sp.activate(inner, SpanContext("tr2"))
        assert sp.active_collector() is inner
        sp.deactivate(inner_token)
        assert sp.active_collector() is collector
        sp.deactivate(token)
        assert sp.active_collector() is None


class TestMerge:
    def test_merge_dedupes_and_orders_deterministically(self):
        a = _mk("x", "t1", "s1", 5.0, 6.0)
        b = _mk("y", "t1", "s2", 2.0, 3.0)
        dup = Span.from_dict(a.to_dict())
        tie = _mk("z", "t0", "s0", 2.0, 4.0)  # same start as b
        merged = merge_spans([a, b], [dup, tie])
        assert [s.span_id for s in merged] == ["s0", "s2", "s1"]
        # Order is input-permutation independent.
        again = merge_spans([tie], [b, a], [dup])
        assert [s.span_id for s in again] == ["s0", "s2", "s1"]

    def test_for_trace_filters(self):
        collector = SpanCollector(process="t")
        keep = collector.begin("k", trace_id="want")
        collector.begin("drop", trace_id="other")
        assert [s.span_id for s in collector.for_trace("want")] == [
            keep.span_id
        ]

    def test_add_dicts_ships_across_process_boundary(self):
        worker = SpanCollector(process="worker")
        worker.end(worker.begin("exec.job"))
        serve = SpanCollector(process="serve")
        assert serve.add_dicts(worker.to_dicts()) == 1
        (shipped,) = serve.snapshot()
        assert shipped.process == "worker"


class TestSummaries:
    def test_summarize_totals_by_name(self):
        spans = [
            _mk("a", "t", "1", 0.0, 1.0),
            _mk("a", "t", "2", 1.0, 3.0),
            _mk("b", "t", "3", 0.0, 0.5),
        ]
        spans[0].cpu_s = 0.25
        summary = summarize_spans(spans)
        assert list(summary) == ["a", "b"]  # sorted
        assert summary["a"] == {"count": 2, "wall_s": 3.0, "cpu_s": 0.25}
        assert summary["b"]["wall_s"] == 0.5

    def test_spans_to_bench_document(self):
        spans = [
            _mk("phase.trace", "t1", "1", 0.0, 2.0, pid=10),
            _mk("phase.trace", "t2", "2", 0.0, 1.0, pid=11),
        ]
        doc = spans_to_bench(spans, scale="smoke")
        assert doc["schema"] == "repro.bench/1"
        assert doc["scale"] == "smoke"
        assert doc["workload"] == {"spans": 2, "traces": 2, "processes": 2}
        assert doc["metrics"]["phase.trace"]["seconds"] == pytest.approx(3.0)
        assert doc["derived"]["phase.trace"]["count"] == 2
        json.dumps(doc)  # must serialize


class TestPerfettoExport:
    def test_round_trip_nesting_and_pid_tid_mapping(self):
        # Two processes, two traces; children must land on the parent's
        # pid/tid row and nest by containment (satellite 4).
        root = _mk("request", "tr", "r", 100.0, 101.0,
                   process="serve", pid=50)
        child = _mk("exec.job", "tr", "c", 100.2, 100.8, parent="r",
                    process="worker", pid=51)
        other = _mk("request", "t2", "o", 100.1, 100.3,
                    process="serve", pid=50)
        doc = spans_to_chrome_trace([root, child, other])
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        by_id = {e["args"]["span_id"]: e for e in slices}

        # pid per (process, os-pid): serve spans share one, worker differs.
        assert by_id["r"]["pid"] == by_id["o"]["pid"]
        assert by_id["c"]["pid"] != by_id["r"]["pid"]
        # tid per (pid, trace): same-process different-trace spans split.
        assert by_id["r"]["tid"] != by_id["o"]["tid"]
        # Nesting by containment: child's [ts, ts+dur) inside root's.
        assert by_id["c"]["ts"] >= by_id["r"]["ts"]
        assert (by_id["c"]["ts"] + by_id["c"]["dur"]
                <= by_id["r"]["ts"] + by_id["r"]["dur"])
        assert by_id["c"]["args"]["parent_id"] == "r"

        names = {
            (e["pid"], e["args"]["name"])
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {
            (by_id["r"]["pid"], "serve (os pid 50)"),
            (by_id["c"]["pid"], "worker (os pid 51)"),
        }

    def test_timestamps_rebase_to_earliest_span(self):
        spans = [_mk("a", "t", "1", 500.0, 500.001)]
        doc = spans_to_chrome_trace(spans)
        (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert event["ts"] == 0
        assert event["dur"] == 1000  # 1 ms in µs
        assert doc["otherData"]["base_unix"] == 500.0

    def test_zero_duration_renders_one_microsecond(self):
        doc = spans_to_chrome_trace([_mk("a", "t", "1", 1.0, 1.0)])
        (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert event["dur"] == 1

    def test_export_is_deterministic_across_input_order(self):
        spans = [
            _mk("a", "t1", "1", 0.0, 1.0, pid=1),
            _mk("b", "t2", "2", 0.5, 1.5, pid=2),
            _mk("c", "t1", "3", 0.2, 0.4, pid=1),
        ]
        forward = spans_to_chrome_trace(spans)
        backward = spans_to_chrome_trace(list(reversed(spans)))
        assert forward == backward


class TestSpanIO:
    def test_write_load_round_trip(self, tmp_path):
        with collect(process="io") as collector:
            with span("a"):
                with span("b"):
                    pass
        path = write_spans(tmp_path / "spans.json", collector.snapshot())
        loaded = load_spans(path)
        assert loaded == merge_spans(collector.snapshot())

    def test_load_rejects_other_schemas(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "repro.report/1"}))
        with pytest.raises(ValueError):
            load_spans(path)

    def test_job_trace_endpoint_shape_loads(self, tmp_path):
        # The served JSON trace document is itself a loadable span file.
        doc = {
            "schema": SPAN_SCHEMA,
            "job": "j1",
            "trace_id": "tr",
            "spans": [_mk("request", "tr", "r", 1.0, 2.0).to_dict()],
        }
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(doc))
        assert [s.name for s in load_spans(path)] == ["request"]


class TestPipelineSpans:
    def test_api_run_emits_phase_spans(self):
        from repro.api import run as api_run
        from repro.core.pipeline import clear_caches

        clear_caches()
        with collect(process="test") as collector:
            api_run("WKND", "baseline", "smoke")
        names = [s.name for s in collector.snapshot()]
        assert "api.run" in names
        for phase in ("phase.cache_lookup", "phase.scene_build",
                      "phase.trace", "phase.replay"):
            assert phase in names, f"missing {phase} in {names}"
        # All spans share the collector's trace and close cleanly.
        spans = collector.snapshot()
        assert len({s.trace_id for s in spans}) == 1
        assert all(s.end_unix is not None for s in spans)

    def test_cached_rerun_skips_compute_phases(self):
        from repro.api import run as api_run

        api_run("WKND", "baseline", "smoke")  # warm the memo cache
        with collect(process="test") as collector:
            api_run("WKND", "baseline", "smoke")
        names = [s.name for s in collector.snapshot()]
        assert "phase.replay" not in names
        lookup = next(
            s for s in collector.snapshot()
            if s.name == "phase.cache_lookup"
        )
        assert lookup.args["hit"] is True

    def test_execute_jobs_ships_worker_spans(self):
        from repro import BASELINE, SMOKE
        from repro.core.pipeline import clear_caches
        from repro.exec import ExecutionReport, Job, execute_jobs

        clear_caches()
        jobs = [Job("WKND", BASELINE, SMOKE), Job("SHIP", BASELINE, SMOKE)]
        report = ExecutionReport()
        with collect(process="test") as collector:
            execute_jobs(jobs, workers=2, report=report)
        assert report.spans, "workers shipped no spans"
        shipped_names = {s["name"] for s in report.spans}
        assert "exec.job" in shipped_names
        # Shipped spans landed in the ambient collector under our trace.
        trace_id = {s.trace_id for s in collector.snapshot()}
        assert len(trace_id) == 1
        assert {s["trace_id"] for s in report.spans} == trace_id


class TestObsCli:
    @pytest.fixture()
    def span_file(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "run_spans.json"
        assert main([
            "run", "WKND", "--scale", "smoke", "--spans", str(path)
        ]) == 0
        assert path.exists()
        return path

    def test_run_spans_flag_writes_trace(self, span_file):
        spans = load_spans(span_file)
        assert any(s.name == "api.run" for s in spans)
        assert len({s.trace_id for s in spans}) == 1

    def test_obs_summarize_table_and_json(self, span_file, capsys):
        from repro.cli import main

        assert main(["obs", "summarize", str(span_file)]) == 0
        out = capsys.readouterr().out
        assert "api.run" in out

        assert main(["obs", "summarize", str(span_file), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        # `repro run` evaluates the technique and its baseline: two runs.
        assert doc["api.run"]["count"] >= 1

    def test_obs_summarize_bench_output(self, span_file, tmp_path, capsys):
        from repro.cli import main

        bench = tmp_path / "bench.json"
        assert main([
            "obs", "summarize", str(span_file),
            "--bench", str(bench), "--scale", "smoke",
        ]) == 0
        capsys.readouterr()
        doc = json.loads(bench.read_text())
        assert doc["schema"] == "repro.bench/1"
        assert "api.run" in doc["metrics"]

    def test_obs_merge_and_export(self, span_file, tmp_path, capsys):
        from repro.cli import main

        merged = tmp_path / "merged.json"
        assert main([
            "obs", "merge", str(span_file), str(span_file),
            "--out", str(merged),
        ]) == 0
        capsys.readouterr()
        # Same file twice: dedupe leaves the original span set.
        assert load_spans(merged) == load_spans(span_file)

        trace = tmp_path / "trace.json"
        assert main([
            "obs", "export", str(merged), "--out", str(trace)
        ]) == 0
        capsys.readouterr()
        doc = json.loads(trace.read_text())
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == len(load_spans(span_file))

    def test_obs_rejects_bad_input(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(SystemExit):
            main(["obs", "summarize", str(bad)])
