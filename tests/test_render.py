"""Unit tests for the render module, including the image-equality
cross-check between the two traversal algorithms."""

import pytest

from repro.render import Image, RenderConfig, render
from repro.scenes import Camera
from repro.treelet import form_treelets


@pytest.fixture
def camera(sphere_bvh):
    return Camera(position=(0.0, 1.5, 4.0), look_at=(0.0, 0.0, 0.0))


class TestImage:
    def test_set_get_roundtrip(self):
        image = Image(4, 3)
        image.set(2, 1, 0.5)
        assert image.get(2, 1) == 0.5

    def test_out_of_range_rejected(self):
        image = Image(4, 3)
        with pytest.raises(IndexError):
            image.set(4, 0, 1.0)
        with pytest.raises(IndexError):
            image.get(0, 3)

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Image(0, 4)

    def test_mean_and_coverage(self):
        image = Image(2, 2)
        image.set(0, 0, 1.0)
        assert image.mean() == pytest.approx(0.25)
        assert image.coverage() == pytest.approx(0.25)

    def test_max_abs_difference(self):
        a, b = Image(2, 2), Image(2, 2)
        b.set(1, 1, 0.3)
        assert a.max_abs_difference(b) == pytest.approx(0.3)

    def test_difference_requires_same_shape(self):
        with pytest.raises(ValueError):
            Image(2, 2).max_abs_difference(Image(3, 2))

    def test_ascii_dimensions(self):
        image = Image(8, 8)
        art = image.to_ascii()
        assert len(art.splitlines()) == 8
        assert all(len(line) == 16 for line in art.splitlines())

    def test_pgm_output(self, tmp_path):
        image = Image(2, 2)
        image.set(0, 0, 1.0)
        out = image.write_pgm(tmp_path / "frame.pgm")
        content = out.read_text().split()
        assert content[0] == "P2"
        assert "255" in content

    def test_pgm_clamps_values(self, tmp_path):
        image = Image(1, 1)
        image.set(0, 0, 2.5)
        out = image.write_pgm(tmp_path / "clamp.pgm")
        assert out.read_text().split()[-1] == "255"


class TestRender:
    def test_sphere_renders_nonempty(self, sphere_bvh, camera):
        image = render(sphere_bvh, camera, RenderConfig(width=16, height=16))
        assert image.coverage() > 0.1
        assert 0.0 < image.mean() < 1.0

    def test_center_brighter_than_corner(self, sphere_bvh, camera):
        image = render(sphere_bvh, camera, RenderConfig(width=16, height=16))
        assert image.get(8, 8) > image.get(0, 0)

    def test_dfs_and_two_stack_render_identically(self, sphere_bvh, camera):
        """Algorithm 1 reorders node visits but must not change a single
        pixel of the final image."""
        config = RenderConfig(width=16, height=16)
        decomposition = form_treelets(sphere_bvh, 512)
        dfs_image = render(sphere_bvh, camera, config)
        treelet_image = render(
            sphere_bvh, camera, config, decomposition=decomposition
        )
        assert dfs_image.max_abs_difference(treelet_image) < 1e-12

    def test_shadows_darken(self, small_bvh):
        camera = Camera(position=(0.0, 6.0, 14.0), look_at=(0.0, 0.0, 0.0))
        lit = render(
            small_bvh, camera,
            RenderConfig(width=12, height=12, shadows=False),
        )
        shadowed = render(
            small_bvh, camera,
            RenderConfig(width=12, height=12, shadows=True),
        )
        assert shadowed.mean() <= lit.mean() + 1e-12

    def test_miss_pixels_are_black(self, sphere_bvh):
        away = Camera(position=(0.0, 0.0, 4.0), look_at=(0.0, 0.0, 8.0))
        image = render(sphere_bvh, away, RenderConfig(width=8, height=8))
        assert image.mean() == 0.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RenderConfig(width=0)
        with pytest.raises(ValueError):
            RenderConfig(ambient=1.5)
