"""Property-based tests (hypothesis) on core data-structure invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.bvh import BuildConfig, NODE_SIZE_BYTES, build_wide_bvh, dfs_layout
from repro.core.report import geomean
from repro.geometry import AABB, Ray, Triangle, cross, dot, length, normalize, sub
from repro.traversal import (
    ray_aabb_test,
    ray_triangle_test,
    traverse_dfs,
    traverse_two_stack,
)
from repro.treelet import form_treelets, treelet_layout

finite = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
points = st.tuples(finite, finite, finite)
nonzero_dirs = points.filter(lambda v: length(v) > 1e-3)


@st.composite
def triangles_strategy(draw, min_tris=1, max_tris=40):
    n = draw(st.integers(min_tris, max_tris))
    tris = []
    for i in range(n):
        v0 = draw(points)
        e1 = draw(nonzero_dirs)
        e2 = draw(nonzero_dirs)
        v1 = (v0[0] + e1[0], v0[1] + e1[1], v0[2] + e1[2])
        v2 = (v0[0] + e2[0], v0[1] + e2[1], v0[2] + e2[2])
        tris.append(Triangle(v0, v1, v2, primitive_id=i))
    return tris


class TestVectorProperties:
    @given(points, points)
    def test_cross_orthogonal_to_inputs(self, a, b):
        c = cross(a, b)
        assert abs(dot(c, a)) <= 1e-6 * (1 + length(a) * length(b)) * 100
        assert abs(dot(c, b)) <= 1e-6 * (1 + length(a) * length(b)) * 100

    @given(nonzero_dirs)
    def test_normalize_idempotent(self, v):
        n = normalize(v)
        assert math.isclose(length(n), 1.0, rel_tol=1e-9)
        nn = normalize(n)
        assert all(abs(a - b) < 1e-9 for a, b in zip(n, nn))

    @given(points, points)
    def test_triangle_inequality(self, a, b):
        assert length(sub(a, b)) <= length(a) + length(b) + 1e-9


class TestAabbProperties:
    @given(st.lists(points, min_size=1, max_size=20))
    def test_from_points_contains_all(self, pts):
        box = AABB.from_points(pts)
        assert all(box.expanded(1e-9).contains_point(p) for p in pts)

    @given(st.lists(points, min_size=1, max_size=10),
           st.lists(points, min_size=1, max_size=10))
    def test_union_monotone_area(self, pts_a, pts_b):
        a = AABB.from_points(pts_a)
        b = AABB.from_points(pts_b)
        u = a.union(b)
        assert u.surface_area() >= max(a.surface_area(), b.surface_area()) - 1e-9

    @given(st.lists(points, min_size=2, max_size=12))
    def test_intersection_contained_in_both(self, pts):
        half = len(pts) // 2
        a = AABB.from_points(pts[:half] or pts)
        b = AABB.from_points(pts[half:] or pts)
        inter = a.intersection(b)
        if not inter.is_empty():
            assert a.expanded(1e-9).contains_box(inter)
            assert b.expanded(1e-9).contains_box(inter)


class TestIntersectionProperties:
    @given(points, nonzero_dirs, st.lists(points, min_size=2, max_size=8))
    def test_aabb_hit_interval_ordered(self, origin, direction, pts):
        box = AABB.from_points(pts)
        ray = Ray(origin=origin, direction=direction)
        overlap = ray_aabb_test(ray, box)
        if overlap is not None:
            t_enter, t_exit = overlap
            assert t_enter <= t_exit
            assert t_enter >= ray.t_min - 1e-9

    @given(points, nonzero_dirs, triangles_strategy(max_tris=1))
    def test_triangle_hit_point_on_ray(self, origin, direction, tris):
        ray = Ray(origin=origin, direction=direction)
        hit = ray_triangle_test(ray, tris[0])
        if hit is not None:
            expected = ray.at(hit.t)
            assert all(
                abs(a - b) < 1e-5 * max(1.0, abs(hit.t))
                for a, b in zip(hit.point, expected)
            )

    @given(points, nonzero_dirs, triangles_strategy(max_tris=1))
    def test_triangle_hit_inside_bounds(self, origin, direction, tris):
        tri = tris[0]
        ray = Ray(origin=origin, direction=direction)
        hit = ray_triangle_test(ray, tri)
        if hit is not None:
            assert tri.bounds().expanded(1e-4 * (1 + abs(hit.t))).contains_point(
                hit.point
            )


class TestBvhProperties:
    @settings(max_examples=25, deadline=None)
    @given(triangles_strategy())
    def test_build_covers_primitives(self, tris):
        bvh = build_wide_bvh(tris, BuildConfig(max_leaf_size=2))
        bvh.validate()  # the full invariant bundle

    @settings(max_examples=25, deadline=None)
    @given(
        triangles_strategy(),
        st.integers(1, 16),
        st.sampled_from(["bfs", "dfs", "sah"]),
    )
    def test_treelet_partition_invariants(self, tris, max_nodes, strategy):
        bvh = build_wide_bvh(tris, BuildConfig(max_leaf_size=2))
        dec = form_treelets(bvh, max_nodes * NODE_SIZE_BYTES, strategy)
        dec.validate()

    @settings(max_examples=20, deadline=None)
    @given(triangles_strategy())
    def test_layouts_are_bijections(self, tris):
        bvh = build_wide_bvh(tris, BuildConfig(max_leaf_size=2))
        dec = form_treelets(bvh, 512)
        for layout in (dfs_layout(bvh), treelet_layout(dec)):
            addresses = list(layout.node_address.values())
            assert len(set(addresses)) == len(bvh)
            assert all(a % NODE_SIZE_BYTES == 0 for a in addresses)

    @settings(max_examples=20, deadline=None)
    @given(
        triangles_strategy(),
        points,
        nonzero_dirs,
        st.sampled_from(["nearest", "lifo", "fifo"]),
    )
    def test_traversals_agree_on_closest_hit(
        self, tris, origin, direction, order
    ):
        """The paper's Algorithm 1 must be hit-equivalent to DFS under
        every deferred-treelet pop policy."""
        bvh = build_wide_bvh(tris, BuildConfig(max_leaf_size=2))
        dec = form_treelets(bvh, 512)
        ray = Ray(origin=origin, direction=direction)
        dfs_hit = traverse_dfs(ray.clone(), bvh).hit
        two_hit = traverse_two_stack(ray.clone(), bvh, dec, order).hit
        assert (dfs_hit is None) == (two_hit is None)
        if dfs_hit is not None:
            assert math.isclose(dfs_hit.t, two_hit.t, rel_tol=1e-9, abs_tol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(triangles_strategy(), points, nonzero_dirs)
    def test_dfs_visits_subset_of_tree(self, tris, origin, direction):
        bvh = build_wide_bvh(tris, BuildConfig(max_leaf_size=2))
        ray = Ray(origin=origin, direction=direction)
        trace = traverse_dfs(ray, bvh)
        ids = [v.node_id for v in trace.visits]
        assert len(ids) == len(set(ids))
        assert all(0 <= i < len(bvh) for i in ids)


class TestReportProperties:
    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1,
                    max_size=20))
    def test_geomean_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9
