"""The repro.api facade: run/sweep/compare, technique specs, and the
deprecation shims over the legacy entry points.

The redesign's contract: every legacy path (``run_experiment``,
``core.sweeps.run_sweep``, ``exec.run_sweep_parallel``) warns but
returns results identical to the facade, and technique spec strings
resolve to exactly the Technique objects the presets/fields describe.
"""

import dataclasses

import pytest

from repro.api import (
    RunRequest,
    RunResult,
    SweepRequest,
    TECHNIQUE_PRESETS,
    compare,
    describe_techniques,
    parse_technique,
    run,
    sweep,
    technique_fields,
    technique_to_spec,
)
from repro.core import (
    BASELINE,
    SMOKE,
    TREELET_PREFETCH,
    TREELET_TRAVERSAL_ONLY,
    Technique,
)
from repro.core.pipeline import _run_experiment
from repro.obs import simstats_to_dict


class TestParseTechnique:
    def test_presets_resolve(self):
        assert parse_technique("baseline") is BASELINE
        assert parse_technique("treelet-prefetch") is TREELET_PREFETCH
        assert parse_technique("treelet-traversal") is TREELET_TRAVERSAL_ONLY

    def test_technique_objects_pass_through(self):
        assert parse_technique(TREELET_PREFETCH) is TREELET_PREFETCH

    def test_preset_with_overrides(self):
        technique = parse_technique(
            "treelet-prefetch,treelet_bytes=8192,deferred_order=lifo"
        )
        assert technique == dataclasses.replace(
            TREELET_PREFETCH, treelet_bytes=8192, deferred_order="lifo"
        )

    def test_field_aliases(self):
        spec = "treelet-prefetch,bytes=16384,order=fifo,stride=2"
        technique = parse_technique(spec)
        assert technique.treelet_bytes == 16384
        assert technique.deferred_order == "fifo"
        assert technique.layout_stride == 2

    def test_bare_overrides_start_from_baseline_fields(self):
        technique = parse_technique("traversal=treelet,bytes=1024")
        assert technique.traversal == "treelet"
        assert technique.treelet_bytes == 1024

    def test_none_fields(self):
        technique = parse_technique("treelet-prefetch,prefetch=none")
        assert technique.prefetch is None

    def test_bool_field(self):
        assert parse_technique(
            "treelet-prefetch,adaptive=true"
        ).adaptive is True
        assert parse_technique(
            "treelet-prefetch,adaptive=false"
        ).adaptive is False

    def test_popularity_heuristic_with_threshold(self):
        technique = parse_technique(
            "treelet-prefetch,heuristic=popularity:0.25"
        )
        assert technique.heuristic.kind == "popularity"
        assert technique.heuristic.threshold == 0.25

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError, match="unknown technique preset"):
            parse_technique("warp-speed")

    def test_unknown_preset_suggests_near_miss(self):
        with pytest.raises(
            ValueError, match=r"did you mean 'treelet-prefetch'\?"
        ):
            parse_technique("treelet-prefech")

    def test_unknown_field_raises(self):
        with pytest.raises(ValueError):
            parse_technique("treelet-prefetch,warp=9")

    def test_unknown_field_suggests_near_miss(self):
        with pytest.raises(ValueError, match=r"did you mean 'bytes'\?"):
            parse_technique("treelet-prefetch,byts=8192")

    def test_empty_spec_raises(self):
        with pytest.raises(ValueError, match="empty technique spec"):
            parse_technique("")
        with pytest.raises(ValueError, match="empty technique spec"):
            parse_technique("  , ,")

    def test_non_string_spec_raises(self):
        with pytest.raises(ValueError, match="must be a string"):
            parse_technique(42)
        with pytest.raises(ValueError, match="must be a string"):
            parse_technique(None)

    def test_duplicate_field_raises(self):
        with pytest.raises(ValueError, match="duplicate technique field"):
            parse_technique("treelet-prefetch,bytes=4096,bytes=8192")

    def test_duplicate_via_alias_raises(self):
        # 'bytes' is an alias for 'treelet_bytes': same field twice.
        with pytest.raises(
            ValueError, match="duplicate technique field 'treelet_bytes'"
        ):
            parse_technique("treelet-prefetch,bytes=4096,treelet_bytes=8192")

    def test_bad_int_raises(self):
        with pytest.raises(ValueError):
            parse_technique("treelet-prefetch,bytes=many")

    def test_registry_descriptions_cover_presets(self):
        names = {name for name, _label, _note in describe_techniques()}
        assert names == set(TECHNIQUE_PRESETS)
        fields = technique_fields()
        assert any(field.startswith("bytes") for field in fields)


class TestRun:
    def test_run_matches_canonical_pipeline(self):
        result = run("WKND", TREELET_PREFETCH, SMOKE)
        canonical = _run_experiment("WKND", TREELET_PREFETCH, SMOKE)
        assert isinstance(result, RunResult)
        assert simstats_to_dict(result.stats) == simstats_to_dict(
            canonical.stats
        )
        assert result.cycles == canonical.cycles

    def test_run_accepts_spec_strings(self):
        result = run("WKND", "treelet-prefetch", "smoke")
        assert result.technique is TREELET_PREFETCH
        assert result.scale is SMOKE

    def test_run_accepts_request_object(self):
        request = RunRequest(
            scene="WKND", technique="baseline", scale="smoke"
        )
        result = run(request)
        assert result.technique is BASELINE
        assert result.cycles > 0

    def test_run_trace_backends_agree(self):
        vec = run("WKND", "baseline", SMOKE, trace_backend="vectorized")
        sca = run("WKND", "baseline", SMOKE, trace_backend="scalar")
        assert simstats_to_dict(vec.stats) == simstats_to_dict(sca.stats)

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError, match="unknown scale"):
            run("WKND", "baseline", "galactic")

    def test_speedup_over(self):
        base = run("WKND", BASELINE, SMOKE)
        cand = run("WKND", TREELET_PREFETCH, SMOKE)
        assert cand.speedup_over(base) == pytest.approx(
            base.cycles / cand.cycles
        )


class TestSweepCompare:
    SCENES = ["WKND", "SHIP"]

    def test_sweep_outcomes_match_single_runs(self):
        outcome = sweep("treelet-prefetch", self.SCENES, SMOKE)
        assert outcome.scenes == self.SCENES
        for scene in self.SCENES:
            single = run(scene, TREELET_PREFETCH, SMOKE)
            assert simstats_to_dict(
                outcome.outcomes[scene].candidate.stats
            ) == simstats_to_dict(single.stats)
        assert outcome.gmean_speedup > 0

    def test_compare_shares_baseline(self):
        results = compare(
            {"ours": "treelet-prefetch", "traversal": "treelet-traversal"},
            ["WKND"],
            SMOKE,
        )
        assert set(results) == {"ours", "traversal"}
        ours = results["ours"].outcomes["WKND"]
        other = results["traversal"].outcomes["WKND"]
        assert simstats_to_dict(ours.baseline.stats) == simstats_to_dict(
            other.baseline.stats
        )


class TestWireRoundTrip:
    """Satellite contract: RunRequest/SweepRequest survive a JSON
    round-trip and from_dict rejects unknown keys with near-miss
    suggestions — POST bodies are parsed by the facade's own schema."""

    def test_run_request_round_trips(self):
        request = RunRequest(scene="WKND", technique="treelet-prefetch",
                             scale=SMOKE)
        wire = request.to_dict()
        assert wire == {"scene": "WKND", "technique": "treelet-prefetch",
                        "scale": "smoke"}
        rebuilt = RunRequest.from_dict(wire)
        assert rebuilt.scene == request.scene
        assert parse_technique(rebuilt.technique) == parse_technique(
            request.technique
        )

    def test_run_request_round_trips_with_overrides(self):
        request = RunRequest(
            scene="SHIP",
            technique="treelet-prefetch,treelet_bytes=8192",
            scale=SMOKE, cache=False,
        )
        wire = request.to_dict()
        assert "treelet_bytes=8192" in wire["technique"]
        assert wire["cache"] is False
        rebuilt = RunRequest.from_dict(wire)
        assert parse_technique(rebuilt.technique).treelet_bytes == 8192
        assert rebuilt.cache is False

    def test_sweep_request_round_trips(self):
        request = SweepRequest(technique="treelet-prefetch",
                               scenes=("WKND", "SHIP"), scale=SMOKE,
                               jobs=2)
        wire = request.to_dict()
        assert wire["scenes"] == ["WKND", "SHIP"]
        assert wire["jobs"] == 2
        rebuilt = SweepRequest.from_dict(wire)
        assert rebuilt.scenes == ("WKND", "SHIP")
        assert rebuilt.jobs == 2

    def test_sweep_accepts_request_object(self):
        request = SweepRequest(technique=TREELET_PREFETCH,
                               scenes=("WKND",), scale=SMOKE)
        via_object = sweep(request)
        via_args = sweep(TREELET_PREFETCH, ["WKND"], SMOKE)
        assert via_object.speedups() == via_args.speedups()

    def test_unknown_key_suggests_near_miss(self):
        with pytest.raises(ValueError, match="did you mean 'technique'"):
            RunRequest.from_dict({"scene": "WKND", "tecnique": "baseline"})
        with pytest.raises(ValueError, match="did you mean 'scenes'"):
            SweepRequest.from_dict({"technique": "baseline",
                                    "scene": ["WKND"]})

    def test_bad_values_fail_eagerly(self):
        with pytest.raises(ValueError, match="scene"):
            RunRequest.from_dict({})
        with pytest.raises(ValueError):
            RunRequest.from_dict({"scene": "WKND",
                                  "technique": "treelet-prefech"})

    def test_technique_to_spec_round_trips_all_presets(self):
        for name in TECHNIQUE_PRESETS:
            technique = parse_technique(name)
            spec = technique_to_spec(technique)
            assert parse_technique(spec) == technique

    def test_technique_to_spec_round_trips_overrides(self):
        for spec in (
            "treelet-prefetch,treelet_bytes=8192,deferred_order=lifo",
            "treelet-prefetch,layout=dfs,stride=0,mapping=center",
            "baseline,treelet_bytes=16384",
        ):
            technique = parse_technique(spec)
            rebuilt = technique_to_spec(technique)
            assert parse_technique(rebuilt) == technique


class TestDeprecationShims:
    @pytest.fixture(autouse=True)
    def _fresh_warnings(self):
        # The shims warn once per process; forget earlier firings so
        # each test observes its own warning.
        from repro.core import deprecation

        deprecation.reset()
        yield
        deprecation.reset()

    def test_shims_warn_once_per_process(self):
        import warnings

        from repro.core.sweeps import run_sweep

        with pytest.warns(DeprecationWarning, match="repro.api.sweep"):
            run_sweep(TREELET_PREFETCH, ["WKND"], SMOKE)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_sweep(TREELET_PREFETCH, ["WKND"], SMOKE)  # silent now

    def test_facade_never_warns(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run("WKND", TREELET_PREFETCH, SMOKE)
            sweep(TREELET_PREFETCH, ["WKND"], SMOKE)
            compare({"ours": TREELET_PREFETCH}, ["WKND"], SMOKE)

    def test_run_experiment_warns_and_matches(self):
        from repro import run_experiment

        with pytest.warns(DeprecationWarning, match="repro.api.run"):
            legacy = run_experiment("WKND", TREELET_PREFETCH, SMOKE)
        facade = run("WKND", TREELET_PREFETCH, SMOKE)
        assert simstats_to_dict(legacy.stats) == simstats_to_dict(
            facade.stats
        )

    def test_run_sweep_warns_and_matches(self):
        from repro.core.sweeps import run_sweep

        with pytest.warns(DeprecationWarning, match="repro.api.sweep"):
            legacy = run_sweep(TREELET_PREFETCH, ["WKND"], SMOKE)
        facade = sweep(TREELET_PREFETCH, ["WKND"], SMOKE)
        assert legacy.speedups() == facade.speedups()

    def test_compare_techniques_warns_and_matches(self):
        from repro.core.sweeps import compare_techniques

        with pytest.warns(DeprecationWarning, match="repro.api.compare"):
            legacy = compare_techniques(
                {"ours": TREELET_PREFETCH}, ["WKND"], SMOKE
            )
        facade = compare({"ours": TREELET_PREFETCH}, ["WKND"], SMOKE)
        assert legacy["ours"].speedups() == facade["ours"].speedups()

    def test_parallel_shims_warn_and_match(self):
        from repro.exec import run_sweep_parallel

        with pytest.warns(DeprecationWarning, match="repro.api.sweep"):
            legacy = run_sweep_parallel(
                TREELET_PREFETCH, ["WKND", "SHIP"], SMOKE, jobs=2
            )
        facade = sweep(TREELET_PREFETCH, ["WKND", "SHIP"], SMOKE)
        assert legacy.speedups() == facade.speedups()
