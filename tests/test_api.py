"""The repro.api facade: run/sweep/compare, technique specs, and the
deprecation shims over the legacy entry points.

The redesign's contract: every legacy path (``run_experiment``,
``core.sweeps.run_sweep``, ``exec.run_sweep_parallel``) warns but
returns results identical to the facade, and technique spec strings
resolve to exactly the Technique objects the presets/fields describe.
"""

import dataclasses

import pytest

from repro.api import (
    RunRequest,
    RunResult,
    TECHNIQUE_PRESETS,
    compare,
    describe_techniques,
    parse_technique,
    run,
    sweep,
    technique_fields,
)
from repro.core import (
    BASELINE,
    SMOKE,
    TREELET_PREFETCH,
    TREELET_TRAVERSAL_ONLY,
    Technique,
)
from repro.core.pipeline import _run_experiment
from repro.obs import simstats_to_dict


class TestParseTechnique:
    def test_presets_resolve(self):
        assert parse_technique("baseline") is BASELINE
        assert parse_technique("treelet-prefetch") is TREELET_PREFETCH
        assert parse_technique("treelet-traversal") is TREELET_TRAVERSAL_ONLY

    def test_technique_objects_pass_through(self):
        assert parse_technique(TREELET_PREFETCH) is TREELET_PREFETCH

    def test_preset_with_overrides(self):
        technique = parse_technique(
            "treelet-prefetch,treelet_bytes=8192,deferred_order=lifo"
        )
        assert technique == dataclasses.replace(
            TREELET_PREFETCH, treelet_bytes=8192, deferred_order="lifo"
        )

    def test_field_aliases(self):
        spec = "treelet-prefetch,bytes=16384,order=fifo,stride=2"
        technique = parse_technique(spec)
        assert technique.treelet_bytes == 16384
        assert technique.deferred_order == "fifo"
        assert technique.layout_stride == 2

    def test_bare_overrides_start_from_baseline_fields(self):
        technique = parse_technique("traversal=treelet,bytes=1024")
        assert technique.traversal == "treelet"
        assert technique.treelet_bytes == 1024

    def test_none_fields(self):
        technique = parse_technique("treelet-prefetch,prefetch=none")
        assert technique.prefetch is None

    def test_bool_field(self):
        assert parse_technique(
            "treelet-prefetch,adaptive=true"
        ).adaptive is True
        assert parse_technique(
            "treelet-prefetch,adaptive=false"
        ).adaptive is False

    def test_popularity_heuristic_with_threshold(self):
        technique = parse_technique(
            "treelet-prefetch,heuristic=popularity:0.25"
        )
        assert technique.heuristic.kind == "popularity"
        assert technique.heuristic.threshold == 0.25

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError, match="unknown technique preset"):
            parse_technique("warp-speed")

    def test_unknown_preset_suggests_near_miss(self):
        with pytest.raises(
            ValueError, match=r"did you mean 'treelet-prefetch'\?"
        ):
            parse_technique("treelet-prefech")

    def test_unknown_field_raises(self):
        with pytest.raises(ValueError):
            parse_technique("treelet-prefetch,warp=9")

    def test_unknown_field_suggests_near_miss(self):
        with pytest.raises(ValueError, match=r"did you mean 'bytes'\?"):
            parse_technique("treelet-prefetch,byts=8192")

    def test_empty_spec_raises(self):
        with pytest.raises(ValueError, match="empty technique spec"):
            parse_technique("")
        with pytest.raises(ValueError, match="empty technique spec"):
            parse_technique("  , ,")

    def test_non_string_spec_raises(self):
        with pytest.raises(ValueError, match="must be a string"):
            parse_technique(42)
        with pytest.raises(ValueError, match="must be a string"):
            parse_technique(None)

    def test_duplicate_field_raises(self):
        with pytest.raises(ValueError, match="duplicate technique field"):
            parse_technique("treelet-prefetch,bytes=4096,bytes=8192")

    def test_duplicate_via_alias_raises(self):
        # 'bytes' is an alias for 'treelet_bytes': same field twice.
        with pytest.raises(
            ValueError, match="duplicate technique field 'treelet_bytes'"
        ):
            parse_technique("treelet-prefetch,bytes=4096,treelet_bytes=8192")

    def test_bad_int_raises(self):
        with pytest.raises(ValueError):
            parse_technique("treelet-prefetch,bytes=many")

    def test_registry_descriptions_cover_presets(self):
        names = {name for name, _label, _note in describe_techniques()}
        assert names == set(TECHNIQUE_PRESETS)
        fields = technique_fields()
        assert any(field.startswith("bytes") for field in fields)


class TestRun:
    def test_run_matches_canonical_pipeline(self):
        result = run("WKND", TREELET_PREFETCH, SMOKE)
        canonical = _run_experiment("WKND", TREELET_PREFETCH, SMOKE)
        assert isinstance(result, RunResult)
        assert simstats_to_dict(result.stats) == simstats_to_dict(
            canonical.stats
        )
        assert result.cycles == canonical.cycles

    def test_run_accepts_spec_strings(self):
        result = run("WKND", "treelet-prefetch", "smoke")
        assert result.technique is TREELET_PREFETCH
        assert result.scale is SMOKE

    def test_run_accepts_request_object(self):
        request = RunRequest(
            scene="WKND", technique="baseline", scale="smoke"
        )
        result = run(request)
        assert result.technique is BASELINE
        assert result.cycles > 0

    def test_run_trace_backends_agree(self):
        vec = run("WKND", "baseline", SMOKE, trace_backend="vectorized")
        sca = run("WKND", "baseline", SMOKE, trace_backend="scalar")
        assert simstats_to_dict(vec.stats) == simstats_to_dict(sca.stats)

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError, match="unknown scale"):
            run("WKND", "baseline", "galactic")

    def test_speedup_over(self):
        base = run("WKND", BASELINE, SMOKE)
        cand = run("WKND", TREELET_PREFETCH, SMOKE)
        assert cand.speedup_over(base) == pytest.approx(
            base.cycles / cand.cycles
        )


class TestSweepCompare:
    SCENES = ["WKND", "SHIP"]

    def test_sweep_outcomes_match_single_runs(self):
        outcome = sweep("treelet-prefetch", self.SCENES, SMOKE)
        assert outcome.scenes == self.SCENES
        for scene in self.SCENES:
            single = run(scene, TREELET_PREFETCH, SMOKE)
            assert simstats_to_dict(
                outcome.outcomes[scene].candidate.stats
            ) == simstats_to_dict(single.stats)
        assert outcome.gmean_speedup > 0

    def test_compare_shares_baseline(self):
        results = compare(
            {"ours": "treelet-prefetch", "traversal": "treelet-traversal"},
            ["WKND"],
            SMOKE,
        )
        assert set(results) == {"ours", "traversal"}
        ours = results["ours"].outcomes["WKND"]
        other = results["traversal"].outcomes["WKND"]
        assert simstats_to_dict(ours.baseline.stats) == simstats_to_dict(
            other.baseline.stats
        )


class TestDeprecationShims:
    def test_run_experiment_warns_and_matches(self):
        from repro import run_experiment

        with pytest.warns(DeprecationWarning, match="repro.api.run"):
            legacy = run_experiment("WKND", TREELET_PREFETCH, SMOKE)
        facade = run("WKND", TREELET_PREFETCH, SMOKE)
        assert simstats_to_dict(legacy.stats) == simstats_to_dict(
            facade.stats
        )

    def test_run_sweep_warns_and_matches(self):
        from repro.core.sweeps import run_sweep

        with pytest.warns(DeprecationWarning, match="repro.api.sweep"):
            legacy = run_sweep(TREELET_PREFETCH, ["WKND"], SMOKE)
        facade = sweep(TREELET_PREFETCH, ["WKND"], SMOKE)
        assert legacy.speedups() == facade.speedups()

    def test_compare_techniques_warns_and_matches(self):
        from repro.core.sweeps import compare_techniques

        with pytest.warns(DeprecationWarning, match="repro.api.compare"):
            legacy = compare_techniques(
                {"ours": TREELET_PREFETCH}, ["WKND"], SMOKE
            )
        facade = compare({"ours": TREELET_PREFETCH}, ["WKND"], SMOKE)
        assert legacy["ours"].speedups() == facade["ours"].speedups()

    def test_parallel_shims_warn_and_match(self):
        from repro.exec import run_sweep_parallel

        with pytest.warns(DeprecationWarning, match="repro.api.sweep"):
            legacy = run_sweep_parallel(
                TREELET_PREFETCH, ["WKND", "SHIP"], SMOKE, jobs=2
            )
        facade = sweep(TREELET_PREFETCH, ["WKND", "SHIP"], SMOKE)
        assert legacy.speedups() == facade.speedups()
