"""Unit tests for DFS and two-stack traversal."""

import pytest

from repro.geometry import Ray
from repro.traversal import (
    DEFERRED_ORDERS,
    summarize_traces,
    traverse_dfs,
    traverse_dfs_batch,
    traverse_two_stack,
    traverse_two_stack_batch,
)
from repro.treelet import form_treelets

from conftest import center_ray


def brute_force_closest(ray, triangles):
    from repro.traversal import ray_triangle_test

    best = None
    for tri in triangles:
        hit = ray_triangle_test(ray, tri)
        if hit is not None and (best is None or hit.t < best.t):
            best = hit
    return best


class TestDfs:
    def test_finds_brute_force_closest_hit(self, sphere_bvh):
        ray = center_ray()
        trace = traverse_dfs(ray.clone(), sphere_bvh)
        brute = brute_force_closest(ray.clone(), sphere_bvh.triangles)
        assert trace.hit is not None and brute is not None
        assert trace.hit.t == pytest.approx(brute.t)
        assert trace.hit.primitive_id == brute.primitive_id

    def test_miss_leaves_no_hit(self, sphere_bvh):
        ray = Ray(origin=(10.0, 10.0, 10.0), direction=(0.0, 1.0, 0.0))
        trace = traverse_dfs(ray, sphere_bvh)
        assert trace.hit is None

    def test_visits_start_at_root(self, sphere_bvh):
        trace = traverse_dfs(center_ray(), sphere_bvh)
        assert trace.visits[0].node_id == sphere_bvh.ROOT_ID

    def test_early_termination_shrinks_t_max(self, sphere_bvh):
        ray = center_ray()
        traverse_dfs(ray, sphere_bvh)
        assert ray.t_max < float("inf")

    def test_leaf_visits_record_primitive_counts(self, sphere_bvh):
        trace = traverse_dfs(center_ray(), sphere_bvh)
        for visit in trace.visits:
            if visit.is_leaf:
                node = sphere_bvh.node(visit.node_id)
                assert visit.primitive_count == len(node.primitive_ids)

    def test_no_node_visited_twice(self, sphere_bvh):
        trace = traverse_dfs(center_ray(), sphere_bvh)
        ids = [v.node_id for v in trace.visits]
        assert len(ids) == len(set(ids))


class TestTwoStack:
    @pytest.mark.parametrize("order", DEFERRED_ORDERS)
    def test_hit_agrees_with_dfs(self, sphere_bvh, order):
        dec = form_treelets(sphere_bvh, 512)
        ray = center_ray()
        dfs_trace = traverse_dfs(ray.clone(), sphere_bvh)
        two_trace = traverse_two_stack(ray.clone(), sphere_bvh, dec, order)
        assert (dfs_trace.hit is None) == (two_trace.hit is None)
        if dfs_trace.hit is not None:
            assert two_trace.hit.t == pytest.approx(dfs_trace.hit.t)

    def test_batch_hits_agree_with_dfs(self, small_bvh, decomposition):
        rays = [
            Ray(
                origin=(0.0, 0.0, 12.0),
                direction=(0.1 * i - 0.5, 0.05 * i - 0.3, -1.0),
            )
            for i in range(24)
        ]
        dfs_traces = traverse_dfs_batch([r.clone() for r in rays], small_bvh)
        two_traces = traverse_two_stack_batch(
            [r.clone() for r in rays], small_bvh, decomposition
        )
        for a, b in zip(dfs_traces, two_traces):
            assert (a.hit is None) == (b.hit is None)
            if a.hit is not None:
                assert b.hit.t == pytest.approx(a.hit.t)

    def test_unknown_order_rejected(self, sphere_bvh):
        dec = form_treelets(sphere_bvh, 512)
        with pytest.raises(ValueError):
            traverse_two_stack(center_ray(), sphere_bvh, dec, "random")

    def test_visits_cluster_by_treelet(self, small_bvh, decomposition):
        """Two-stack traversal produces fewer treelet transitions than DFS
        (that is its entire purpose)."""

        def transitions(trace):
            tids = [
                decomposition.treelet_of(v.node_id) for v in trace.visits
            ]
            return sum(1 for a, b in zip(tids, tids[1:]) if a != b)

        rays = [
            Ray(
                origin=(0.0, 0.0, 12.0),
                direction=(0.07 * i - 0.4, 0.03 * i - 0.2, -1.0),
            )
            for i in range(32)
        ]
        dfs_total = sum(
            transitions(t)
            for t in traverse_dfs_batch([r.clone() for r in rays], small_bvh)
        )
        two_total = sum(
            transitions(t)
            for t in traverse_two_stack_batch(
                [r.clone() for r in rays], small_bvh, decomposition
            )
        )
        assert two_total <= dfs_total


class TestSummaries:
    def test_summary_aggregates(self, sphere_bvh):
        rays = [center_ray() for _ in range(4)]
        traces = traverse_dfs_batch(rays, sphere_bvh)
        summary = summarize_traces(traces)
        assert summary.ray_count == 4
        assert summary.total_nodes == sum(t.nodes_visited for t in traces)
        assert summary.max_nodes == max(t.nodes_visited for t in traces)
        assert summary.hit_count == 4
        assert summary.avg_nodes_per_ray == pytest.approx(
            summary.total_nodes / 4
        )

    def test_empty_summary(self):
        summary = summarize_traces([])
        assert summary.ray_count == 0
        assert summary.avg_nodes_per_ray == 0.0
