"""Unit tests for procedural mesh generators."""

import numpy as np
import pytest

from repro.scenes import (
    box,
    city,
    cone,
    plane,
    room,
    scattered,
    soup,
    sphere,
    terrain,
    tree,
)


class TestPlane:
    def test_triangle_count(self):
        mesh = plane(4, 3)
        assert mesh.triangle_count == 2 * 4 * 3

    def test_flat_in_y(self):
        mesh = plane(2, 2, y=1.5)
        assert np.allclose(mesh.vertices[:, 1], 1.5)

    def test_bounds_match_size(self):
        mesh = plane(2, 2, size=10.0)
        bounds = mesh.bounds()
        assert bounds.lo[0] == pytest.approx(-5.0)
        assert bounds.hi[2] == pytest.approx(5.0)

    def test_resolution_validation(self):
        with pytest.raises(ValueError):
            plane(0, 1)


class TestBox:
    def test_twelve_triangles(self):
        assert box().triangle_count == 12

    def test_bounds(self):
        mesh = box(center=(1.0, 2.0, 3.0), half_extents=(0.5, 1.0, 1.5))
        bounds = mesh.bounds()
        assert bounds.lo == pytest.approx((0.5, 1.0, 1.5))
        assert bounds.hi == pytest.approx((1.5, 3.0, 4.5))

    def test_positive_extents_required(self):
        with pytest.raises(ValueError):
            box(half_extents=(1.0, 0.0, 1.0))


class TestSphere:
    def test_triangle_count_formula(self):
        stacks, slices = 6, 8
        mesh = sphere(stacks=stacks, slices=slices)
        # Top/bottom caps have one fan each; middle stacks two per quad.
        assert mesh.triangle_count == 2 * slices * (stacks - 1)

    def test_vertices_on_radius(self):
        mesh = sphere(stacks=8, slices=12, radius=2.0, perturb=0.0)
        radii = np.linalg.norm(mesh.vertices, axis=1)
        assert np.allclose(radii, 2.0, atol=1e-9)

    def test_perturb_moves_vertices(self):
        smooth = sphere(stacks=6, slices=8, perturb=0.0, seed=1)
        rough = sphere(stacks=6, slices=8, perturb=0.5, seed=1)
        assert not np.allclose(smooth.vertices, rough.vertices)

    def test_deterministic_for_seed(self):
        a = sphere(perturb=0.3, seed=5)
        b = sphere(perturb=0.3, seed=5)
        assert np.array_equal(a.vertices, b.vertices)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            sphere(stacks=1)


class TestConeTerrain:
    def test_cone_triangle_count(self):
        assert cone(segments=10).triangle_count == 20

    def test_cone_validation(self):
        with pytest.raises(ValueError):
            cone(segments=2)

    def test_terrain_heights_bounded(self):
        mesh = terrain(n=10, amplitude=2.0, seed=3)
        assert np.abs(mesh.vertices[:, 1]).max() <= 2.0 + 1e-9

    def test_terrain_deterministic(self):
        assert np.array_equal(
            terrain(n=6, seed=9).vertices, terrain(n=6, seed=9).vertices
        )


class TestSoup:
    def test_exact_triangle_count(self):
        assert soup(37, seed=1).triangle_count == 37

    def test_zero_triangles(self):
        assert soup(0).triangle_count == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            soup(-1)

    def test_clustered_soup_is_spatially_tighter(self):
        uniform = soup(500, extent=10.0, seed=2, clusters=0)
        clustered = soup(500, extent=10.0, seed=2, clusters=3)
        # Mean pairwise spread around cluster centers is smaller.
        def spread(mesh):
            centers = mesh.vertices.reshape(-1, 3, 3).mean(axis=1)
            return centers.std(axis=0).mean()

        assert spread(clustered) != spread(uniform)

    def test_deterministic(self):
        a, b = soup(20, seed=4), soup(20, seed=4)
        assert np.array_equal(a.vertices, b.vertices)


class TestComposites:
    def test_scattered_multiplies_base(self):
        base = box()
        mesh = scattered(base, 5, seed=1)
        assert mesh.triangle_count == 5 * base.triangle_count

    def test_scattered_zero_copies(self):
        assert scattered(box(), 0).triangle_count == 0

    def test_room_has_floor_and_walls(self):
        mesh = room(10.0, 4.0)
        bounds = mesh.bounds()
        assert bounds.hi[1] >= 4.0

    def test_city_block_count(self):
        mesh = city(blocks=3, seed=1)
        assert mesh.triangle_count == 12 * 9

    def test_tree_combines_trunk_and_canopy(self):
        mesh = tree(seed=1, detail=5)
        assert mesh.triangle_count > 12  # more than just the trunk box
