"""Unit tests for treelet decomposition statistics."""

import pytest

from repro.bvh import NODE_SIZE_BYTES
from repro.treelet import (
    bytes_wasted_by_slotting,
    compute_treelet_stats,
    form_treelets,
    size_histogram,
)


class TestTreeletStats:
    def test_counts_match_decomposition(self, small_bvh, decomposition):
        stats = compute_treelet_stats(decomposition)
        assert stats.treelet_count == decomposition.treelet_count
        assert stats.max_nodes_per_treelet == 512 // NODE_SIZE_BYTES

    def test_mean_nodes_consistent(self, small_bvh, decomposition):
        stats = compute_treelet_stats(decomposition)
        total = sum(t.node_count for t in decomposition.treelets)
        assert stats.mean_nodes == pytest.approx(
            total / decomposition.treelet_count
        )

    def test_fractions_in_unit_range(self, decomposition):
        stats = compute_treelet_stats(decomposition)
        assert 0.0 <= stats.full_fraction <= 1.0
        assert 0.0 <= stats.singleton_fraction <= 1.0
        assert 0.0 < stats.mean_occupancy <= 1.0

    def test_occupancy_matches_decomposition(self, decomposition):
        stats = compute_treelet_stats(decomposition)
        assert stats.mean_occupancy == pytest.approx(
            decomposition.occupancy()
        )

    def test_root_treelet_starts_at_depth_zero(self, decomposition):
        stats = compute_treelet_stats(decomposition)
        assert stats.mean_root_depth >= 0.0
        assert stats.mean_depth_span >= 1.0

    def test_singleton_decomposition(self, small_bvh):
        singles = form_treelets(small_bvh, NODE_SIZE_BYTES)
        stats = compute_treelet_stats(singles)
        assert stats.singleton_fraction == 1.0
        assert stats.mean_occupancy == 1.0
        assert stats.mean_depth_span == 1.0


class TestHistogramAndWaste:
    def test_histogram_sums_to_count(self, decomposition):
        histogram = size_histogram(decomposition)
        assert sum(histogram.values()) == decomposition.treelet_count
        cap = decomposition.max_nodes_per_treelet
        assert all(1 <= size <= cap for size in histogram)

    def test_wasted_bytes_formula(self, small_bvh, decomposition):
        wasted = bytes_wasted_by_slotting(decomposition)
        expected = (
            decomposition.treelet_count * decomposition.max_bytes
            - len(small_bvh) * NODE_SIZE_BYTES
        )
        assert wasted == expected
        assert wasted >= 0

    def test_no_waste_for_singletons(self, small_bvh):
        singles = form_treelets(small_bvh, NODE_SIZE_BYTES)
        assert bytes_wasted_by_slotting(singles) == 0
