"""Unit tests for the vector math core."""

import math

import pytest

from repro.geometry import vec as v


class TestBasicOps:
    def test_vec3_coerces_to_float(self):
        assert v.vec3(1, 2, 3) == (1.0, 2.0, 3.0)
        assert all(isinstance(c, float) for c in v.vec3(1, 2, 3))

    def test_add_sub_roundtrip(self):
        a, b = (1.0, 2.0, 3.0), (-4.0, 5.5, 0.25)
        assert v.sub(v.add(a, b), b) == pytest.approx(a)

    def test_mul_scales_each_component(self):
        assert v.mul((1.0, -2.0, 3.0), 2.0) == (2.0, -4.0, 6.0)

    def test_hadamard(self):
        assert v.hadamard((1.0, 2.0, 3.0), (4.0, 5.0, 6.0)) == (4.0, 10.0, 18.0)

    def test_dot_orthogonal_is_zero(self):
        assert v.dot((1.0, 0.0, 0.0), (0.0, 1.0, 0.0)) == 0.0

    def test_dot_self_is_length_squared(self):
        a = (3.0, 4.0, 12.0)
        assert v.dot(a, a) == pytest.approx(v.length_squared(a))

    def test_cross_follows_right_hand_rule(self):
        assert v.cross((1.0, 0.0, 0.0), (0.0, 1.0, 0.0)) == (0.0, 0.0, 1.0)

    def test_cross_is_anticommutative(self):
        a, b = (1.0, 2.0, 3.0), (4.0, 5.0, 6.0)
        assert v.cross(a, b) == pytest.approx(v.mul(v.cross(b, a), -1.0))

    def test_length_of_pythagorean_triple(self):
        assert v.length((3.0, 4.0, 0.0)) == pytest.approx(5.0)

    def test_distance_symmetry(self):
        a, b = (1.0, 1.0, 1.0), (4.0, 5.0, 1.0)
        assert v.distance(a, b) == v.distance(b, a) == pytest.approx(5.0)


class TestNormalize:
    def test_normalize_produces_unit_length(self):
        n = v.normalize((10.0, -7.0, 3.0))
        assert v.length(n) == pytest.approx(1.0)

    def test_normalize_preserves_direction(self):
        n = v.normalize((0.0, 5.0, 0.0))
        assert n == pytest.approx((0.0, 1.0, 0.0))

    def test_normalize_zero_vector_raises(self):
        with pytest.raises(ValueError):
            v.normalize((0.0, 0.0, 0.0))


class TestMinMaxLerp:
    def test_vmin_vmax_componentwise(self):
        a, b = (1.0, 5.0, -2.0), (3.0, 2.0, -1.0)
        assert v.vmin(a, b) == (1.0, 2.0, -2.0)
        assert v.vmax(a, b) == (3.0, 5.0, -1.0)

    def test_lerp_endpoints_and_midpoint(self):
        a, b = (0.0, 0.0, 0.0), (2.0, 4.0, 6.0)
        assert v.lerp(a, b, 0.0) == pytest.approx(a)
        assert v.lerp(a, b, 1.0) == pytest.approx(b)
        assert v.lerp(a, b, 0.5) == pytest.approx((1.0, 2.0, 3.0))


class TestReflect:
    def test_reflect_off_plane(self):
        incoming = v.normalize((1.0, -1.0, 0.0))
        out = v.reflect(incoming, (0.0, 1.0, 0.0))
        assert out == pytest.approx(v.normalize((1.0, 1.0, 0.0)))

    def test_reflection_preserves_length(self):
        d = (0.3, -0.8, 0.5)
        assert v.length(v.reflect(d, (0.0, 1.0, 0.0))) == pytest.approx(
            v.length(d)
        )


class TestSafeInverse:
    def test_inverts_nonzero_components(self):
        assert v.safe_inverse((2.0, -4.0, 0.5)) == pytest.approx(
            (0.5, -0.25, 2.0)
        )

    def test_zero_component_becomes_huge_finite(self):
        inv = v.safe_inverse((0.0, 1.0, -1.0))
        assert math.isfinite(inv[0]) and abs(inv[0]) >= 1e29

    def test_sign_preserved_for_tiny_negative(self):
        inv = v.safe_inverse((-1e-12, 1.0, 1.0))
        assert inv[0] < 0
