"""Unit tests for rays, triangles, and meshes."""

import numpy as np
import pytest

from repro.geometry import Mesh, Ray, RayKind, Triangle, merge_meshes


class TestRay:
    def test_direction_is_normalized(self):
        ray = Ray(origin=(0.0, 0.0, 0.0), direction=(0.0, 0.0, 10.0))
        assert ray.direction == pytest.approx((0.0, 0.0, 1.0))

    def test_at_walks_along_direction(self):
        ray = Ray(origin=(1.0, 0.0, 0.0), direction=(0.0, 1.0, 0.0))
        assert ray.at(2.5) == pytest.approx((1.0, 2.5, 0.0))

    def test_unique_ids(self):
        a = Ray(origin=(0.0, 0.0, 0.0), direction=(1.0, 0.0, 0.0))
        b = Ray(origin=(0.0, 0.0, 0.0), direction=(1.0, 0.0, 0.0))
        assert a.ray_id != b.ray_id

    def test_clone_restores_interval_and_keeps_id(self):
        ray = Ray(origin=(0.0, 0.0, 0.0), direction=(1.0, 0.0, 0.0))
        ray.t_max = 3.0  # traversal shrank it
        clone = ray.clone()
        assert clone.ray_id == ray.ray_id
        assert clone.t_max == float("inf")

    def test_invalid_intervals_rejected(self):
        with pytest.raises(ValueError):
            Ray(origin=(0.0, 0.0, 0.0), direction=(1.0, 0.0, 0.0), t_min=-1.0)
        with pytest.raises(ValueError):
            Ray(
                origin=(0.0, 0.0, 0.0),
                direction=(1.0, 0.0, 0.0),
                t_min=2.0,
                t_max=1.0,
            )

    def test_zero_direction_rejected(self):
        with pytest.raises(ValueError):
            Ray(origin=(0.0, 0.0, 0.0), direction=(0.0, 0.0, 0.0))

    def test_kind_default_primary(self):
        ray = Ray(origin=(0.0, 0.0, 0.0), direction=(1.0, 0.0, 0.0))
        assert ray.kind is RayKind.PRIMARY


class TestTriangle:
    def test_bounds_enclose_vertices(self, unit_triangle):
        box = unit_triangle.bounds()
        for vertex in (unit_triangle.v0, unit_triangle.v1, unit_triangle.v2):
            assert box.contains_point(vertex)

    def test_centroid_is_vertex_mean(self, unit_triangle):
        assert unit_triangle.centroid() == pytest.approx(
            (1.0 / 3.0, 1.0 / 3.0, 0.0)
        )

    def test_area_of_unit_right_triangle(self, unit_triangle):
        assert unit_triangle.area() == pytest.approx(0.5)

    def test_normal_is_unit_and_perpendicular(self, unit_triangle):
        normal = unit_triangle.normal()
        assert normal == pytest.approx((0.0, 0.0, 1.0))

    def test_degenerate_detection(self):
        degenerate = Triangle(
            (0.0, 0.0, 0.0), (1.0, 1.0, 1.0), (2.0, 2.0, 2.0), 0
        )
        assert degenerate.is_degenerate()

    def test_nondegenerate(self, unit_triangle):
        assert not unit_triangle.is_degenerate()


class TestMesh:
    def test_triangle_materialization_ids(self):
        mesh = Mesh(
            np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [1, 1, 0]], float),
            np.array([[0, 1, 2], [1, 3, 2]]),
        )
        tris = mesh.triangles(id_offset=10)
        assert [t.primitive_id for t in tris] == [10, 11]

    def test_face_index_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Mesh(np.zeros((2, 3)), np.array([[0, 1, 2]]))

    def test_negative_face_index_rejected(self):
        with pytest.raises(ValueError):
            Mesh(np.zeros((3, 3)), np.array([[0, -1, 2]]))

    def test_translated_moves_bounds(self):
        mesh = Mesh(np.zeros((3, 3)), np.array([[0, 1, 2]]))
        moved = mesh.translated((1.0, 2.0, 3.0))
        assert moved.bounds().lo == pytest.approx((1.0, 2.0, 3.0))

    def test_scaled_requires_positive_factor(self):
        mesh = Mesh(np.zeros((3, 3)), np.array([[0, 1, 2]]))
        with pytest.raises(ValueError):
            mesh.scaled(0.0)

    def test_rotation_preserves_triangle_count_and_y(self):
        mesh = Mesh(
            np.array([[1.0, 2.0, 0.0], [0.0, 2.0, 1.0], [1.0, 2.0, 1.0]]),
            np.array([[0, 1, 2]]),
        )
        rotated = mesh.rotated_y(1.234)
        assert rotated.triangle_count == 1
        assert rotated.vertices[:, 1] == pytest.approx(mesh.vertices[:, 1])

    def test_merge_remaps_indices(self):
        a = Mesh(np.zeros((3, 3)), np.array([[0, 1, 2]]))
        b = Mesh(np.ones((3, 3)), np.array([[0, 1, 2]]))
        merged = merge_meshes([a, b])
        assert merged.triangle_count == 2
        assert merged.faces[1].tolist() == [3, 4, 5]

    def test_merge_empty_list(self):
        merged = merge_meshes([])
        assert merged.triangle_count == 0
