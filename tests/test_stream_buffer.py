"""Unit tests for the stream-buffer prefetch destination."""

import pytest

from repro.core.config import CacheConfig, DramConfig, GpuConfig
from repro.gpusim import AccessOutcome, EventQueue, MemorySystem


def stream_config(**kw):
    defaults = dict(
        n_sms=1,
        prefetch_destination="stream",
        l1=CacheConfig(size_bytes=512, line_bytes=128, latency=20),
        stream_buffer=CacheConfig(size_bytes=256, line_bytes=128, latency=20),
        l2=CacheConfig(
            size_bytes=2048, line_bytes=128, associativity=2, latency=160
        ),
        dram=DramConfig(latency=100, partitions=4, burst_cycles=4),
    )
    defaults.update(kw)
    return GpuConfig(**defaults)


@pytest.fixture
def memsys():
    events = EventQueue()
    return MemorySystem(stream_config(), events), events


def run_until(events, limit=10_000):
    while len(events):
        events.run_due(events.next_cycle())


class TestPrefetchPath:
    def test_prefetch_fills_buffer_not_l1(self, memsys):
        mem, events = memsys
        mem.access(0, 0x1000, cycle=0, is_prefetch=True)
        run_until(events)
        line = mem.l1s[0].line_of(0x1000)
        assert mem.stream_buffers[0].contains(line)
        assert not mem.l1s[0].contains(line)

    def test_demand_hit_migrates_to_l1(self, memsys):
        mem, events = memsys
        mem.access(0, 0x1000, cycle=0, is_prefetch=True)
        run_until(events)
        done = []
        mem.access(0, 0x1000, cycle=1000, callback=done.append)
        run_until(events)
        line = mem.l1s[0].line_of(0x1000)
        assert done  # demand serviced
        assert mem.l1s[0].contains(line)
        assert not mem.stream_buffers[0].contains(line)
        assert mem.stream_buffer_hits == 1

    def test_buffer_hit_latency_below_l2(self, memsys):
        mem, events = memsys
        mem.access(0, 0x1000, cycle=0, is_prefetch=True)
        run_until(events)
        done = []
        mem.access(0, 0x1000, cycle=1000, callback=done.append)
        run_until(events)
        # Transfer: L1 probe (miss) + buffer latency; far below the
        # 180-cycle L2 path.
        assert done[0] - 1000 < 100

    def test_timely_classification(self, memsys):
        mem, events = memsys
        mem.access(0, 0x1000, cycle=0, is_prefetch=True)
        run_until(events)
        mem.access(0, 0x1000, cycle=1000, callback=lambda c: None)
        run_until(events)
        assert mem.finalize().timely == 1

    def test_demand_catches_inflight_prefetch(self, memsys):
        mem, events = memsys
        mem.access(0, 0x1000, cycle=0, is_prefetch=True)
        done = []
        mem.access(0, 0x1000, cycle=5, callback=done.append)
        run_until(events)
        assert done  # demand eventually serviced via the transfer
        line = mem.l1s[0].line_of(0x1000)
        assert mem.l1s[0].contains(line)
        counts = mem.finalize()
        assert counts.late == 1

    def test_prefetch_skips_line_already_in_l1(self, memsys):
        mem, events = memsys
        mem.access(0, 0x1000, cycle=0, callback=lambda c: None)  # demand
        run_until(events)
        outcome = mem.access(0, 0x1000, cycle=1000, is_prefetch=True)
        run_until(events)
        assert outcome is AccessOutcome.HIT
        line = mem.l1s[0].line_of(0x1000)
        assert not mem.stream_buffers[0].contains(line)
        assert mem.finalize().too_late == 1

    def test_buffer_eviction_counts_early(self, memsys):
        mem, events = memsys
        # The 2-line buffer overflows on the third prefetch.
        for i in range(3):
            mem.access(0, 0x1000 + i * 128, cycle=0, is_prefetch=True)
        run_until(events)
        counts = mem.finalize()
        assert counts.early == 1
        assert counts.unused == 2

    def test_demand_miss_everywhere_goes_to_l2(self, memsys):
        mem, events = memsys
        done = []
        mem.access(0, 0x9000, cycle=0, callback=done.append)
        run_until(events)
        assert done == [284]  # full L1+L2+DRAM path


class TestConfigValidation:
    def test_unknown_destination_rejected(self):
        with pytest.raises(ValueError):
            GpuConfig(prefetch_destination="l3")

    def test_line_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GpuConfig(
                stream_buffer=CacheConfig(size_bytes=256, line_bytes=64)
            )

    def test_l1_destination_has_no_buffers(self):
        events = EventQueue()
        mem = MemorySystem(GpuConfig(), events)
        assert not mem.uses_stream_buffers
        assert mem.stream_buffers == []
