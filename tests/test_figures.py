"""Unit tests for the figure-rendering helpers."""

import json

import pytest

from repro.analysis import (
    PAPER_VALUES,
    load_results,
    render_all,
    render_effectiveness_figure,
    render_speedup_figure,
)


@pytest.fixture
def sample_results():
    return {
        "fig13_schedulers": {
            "baseline": 1.30, "omr": 1.29, "pmr": 1.31,
            "scale": "default", "recorded_at": "now",
        },
        "fig20_effectiveness": {
            "timely": 0.3, "late": 0.2, "too_late": 0.2,
            "early": 0.1, "unused": 0.2,
            "scale": "default", "recorded_at": "now",
        },
    }


class TestRenderers:
    def test_speedup_figure_has_bars_and_paper(self, sample_results):
        out = render_speedup_figure(
            "fig13_schedulers", sample_results["fig13_schedulers"]
        )
        assert "pmr" in out
        assert "paper" in out  # comparison block present

    def test_metadata_keys_excluded(self, sample_results):
        out = render_speedup_figure(
            "fig13_schedulers", sample_results["fig13_schedulers"]
        )
        assert "recorded_at" not in out

    def test_effectiveness_stacked(self, sample_results):
        out = render_effectiveness_figure(
            sample_results["fig20_effectiveness"]
        )
        assert "timely" in out
        assert "[" in out and "]" in out

    def test_render_all_collects_blocks(self, sample_results):
        blocks = render_all(sample_results)
        assert len(blocks) == 2
        assert any("fig13" in b for b in blocks)
        assert any("fig20" in b for b in blocks)

    def test_render_all_skips_missing(self):
        assert render_all({}) == []

    def test_unknown_experiment_without_paper_values(self):
        out = render_speedup_figure("fig99_custom", {"a": 1.5})
        assert "1.500x" in out
        assert "paper" not in out


class TestLoadResults:
    def test_load_roundtrip(self, tmp_path, sample_results):
        path = tmp_path / "experiments.json"
        path.write_text(json.dumps(sample_results))
        assert load_results(path) == sample_results

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_results(tmp_path / "nope.json")

    def test_paper_values_sane(self):
        for series in PAPER_VALUES.values():
            assert all(v > 0 for v in series.values())
