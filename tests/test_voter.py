"""Unit tests for the majority voters and the Section 6.5 area model."""

import pytest

from repro.prefetch import (
    MajorityVoter,
    first_level_table_bytes,
    second_level_table_bytes,
    voter_latency_for_copies,
    voter_storage_bytes,
)


class StubWarp:
    def __init__(self, counts):
        self.alive_treelet_counts = dict(counts)

    def winner_treelet(self):
        if not self.alive_treelet_counts:
            return None
        return min(
            self.alive_treelet_counts,
            key=lambda t: (-self.alive_treelet_counts[t], t),
        )


class TestFullVoter:
    def test_picks_global_plurality(self):
        voter = MajorityVoter("full")
        warps = [StubWarp({1: 3, 2: 1}), StubWarp({2: 5})]
        winner, popularity, total = voter.decide(warps)
        assert winner == 2
        assert popularity == 6
        assert total == 9

    def test_tie_breaks_to_lowest_treelet(self):
        voter = MajorityVoter("full")
        warps = [StubWarp({5: 2}), StubWarp({3: 2})]
        winner, _, _ = voter.decide(warps)
        assert winner == 3

    def test_none_when_no_votes(self):
        voter = MajorityVoter("full")
        assert voter.decide([StubWarp({})]) is None

    def test_ignores_no_treelet_marker(self):
        voter = MajorityVoter("full")
        assert voter.decide([StubWarp({-1: 10})]) is None

    def test_full_voter_always_agrees_with_itself(self):
        voter = MajorityVoter("full")
        for counts in ({1: 2}, {3: 1, 4: 9}, {7: 5, 2: 5}):
            voter.decide([StubWarp(counts)])
        assert voter.stats.accuracy == 1.0


class TestPseudoVoter:
    def test_agrees_on_clear_majority(self):
        voter = MajorityVoter("pseudo")
        warps = [StubWarp({1: 10}), StubWarp({1: 8, 2: 2})]
        winner, _, _ = voter.decide(warps)
        assert winner == 1
        assert voter.stats.accuracy == 1.0

    def test_can_disagree_with_full_voter(self):
        """Minority counts are invisible past level one: treelet 2 leads
        globally (10 vs 9) but loses every warp except the last, so the
        pseudo voter never sees most of its support."""
        voter = MajorityVoter("pseudo")
        warps = [
            StubWarp({1: 3, 2: 2}),
            StubWarp({1: 3, 2: 2}),
            StubWarp({1: 3, 2: 2}),
            StubWarp({2: 4}),
        ]
        winner, _, _ = voter.decide(warps)
        assert winner == 1  # pseudo: level two sees 1->9, 2->4
        assert voter.stats.decisions == 1
        assert voter.stats.agreements == 0  # full voter picks 2 (10 > 9)

    def test_accuracy_tracks_agreements(self):
        voter = MajorityVoter("pseudo")
        voter.decide([StubWarp({1: 5})])  # agree
        voter.decide(
            [
                StubWarp({1: 3, 2: 2}),
                StubWarp({1: 3, 2: 2}),
                StubWarp({1: 3, 2: 2}),
                StubWarp({2: 4}),
            ]
        )  # disagree
        assert voter.stats.accuracy == pytest.approx(0.5)


class TestVoterConfig:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            MajorityVoter("quantum")

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            MajorityVoter("full", latency=-1)

    def test_period_is_at_least_one(self):
        assert MajorityVoter("full", latency=0).period == 1
        assert MajorityVoter("full", latency=32).period == 32


class TestAreaModel:
    def test_paper_table_sizes(self):
        assert first_level_table_bytes() == 108
        assert second_level_table_bytes() == 52

    def test_storage_scales_with_copies(self):
        assert voter_storage_bytes(1) == 108 + 52
        assert voter_storage_bytes(16) == 16 * 108 + 52

    def test_latency_for_copies_matches_figure_16(self):
        # 1 table -> 512 cycles, 4 tables -> 128, 16 tables -> 32.
        assert voter_latency_for_copies(1) == 512
        assert voter_latency_for_copies(4) == 128
        assert voter_latency_for_copies(16) == 32

    def test_latency_rounds_up_for_non_divisors(self):
        """Scanning 512 threads over 3 tables takes ceil(512/3) = 171
        cycles — the last partial pass still costs a full cycle."""
        assert voter_latency_for_copies(3) == 171
        assert voter_latency_for_copies(5) == 103
        # Copies beyond one table per warp-buffer entry don't help.
        assert voter_latency_for_copies(512) == voter_latency_for_copies(16)
        # Total scan work is never under-counted.
        for copies in range(1, 64):
            assert voter_latency_for_copies(copies) * copies >= 512

    def test_invalid_copies_rejected(self):
        with pytest.raises(ValueError):
            voter_latency_for_copies(0)
        with pytest.raises(ValueError):
            voter_storage_bytes(0)
