#!/usr/bin/env python3
"""Occupancy timeline: watch the RT units stall (and un-stall).

Attaches a timeline sampler to the GPU model and plots, as sparklines,
how many rays are issue-ready over time — the latency-bound signature
the paper's Figure 1 argues from. With the prefetcher on, rays spend
less time waiting on memory, so the ready-ray series sits higher and
the run ends sooner.

Run:  python examples/occupancy_timeline.py [SCENE]
"""

from __future__ import annotations

import sys

from repro import BASELINE, DEFAULT, TREELET_PREFETCH
from repro.analysis import sparkline
from repro.core import banner, build_gpu_model
from repro.gpusim import TimelineSampler


def simulate(scene: str, technique):
    sampler = TimelineSampler(interval=200)
    model, _, _, _ = build_gpu_model(
        scene, technique, DEFAULT, timeline=sampler
    )
    stats = model.run()
    return stats, sampler


def main() -> None:
    scene = sys.argv[1] if len(sys.argv) > 1 else "CHSNT"
    print(banner(f"Occupancy timeline — {scene}"))

    base_stats, base_tl = simulate(scene, BASELINE)
    pref_stats, pref_tl = simulate(scene, TREELET_PREFETCH)

    print(f"\nbaseline:  {base_stats.cycles} cycles, "
          f"stall fraction {base_stats.stall_fraction:.2f}")
    print(f"prefetch:  {pref_stats.cycles} cycles, "
          f"stall fraction {pref_stats.stall_fraction:.2f}")
    print(f"speedup:   {base_stats.cycles / pref_stats.cycles:.3f}x")

    print("\nready rays over time (one sample per 200 cycles):")
    print(f"  baseline  {sparkline(base_tl.series('ready_rays'))}")
    print(f"  prefetch  {sparkline(pref_tl.series('ready_rays'))}")
    print("\nresident warps over time:")
    print(f"  baseline  {sparkline(base_tl.series('resident_warps'))}")
    print(f"  prefetch  {sparkline(pref_tl.series('resident_warps'))}")
    print("\nprefetch queue depth over time:")
    print(f"  prefetch  {sparkline(pref_tl.series('prefetch_queue_depth'))}")
    print(
        "\nreading the charts: at almost every sampled cycle the ready-ray"
        "\ncount is ~0 — every ray is waiting on memory (the paper's"
        "\nlatency-bound premise, Figure 1). Prefetching doesn't raise the"
        "\ninstantaneous occupancy; it shortens each wait, so the warp"
        "\npopulation drains earlier (shorter sparkline above)."
    )


if __name__ == "__main__":
    main()
