#!/usr/bin/env python3
"""Render the recorded evaluation as terminal figures.

After ``pytest benchmarks/ --benchmark-only`` has populated
``results/experiments.json``, this example draws the paper's figure
shapes — heuristics, schedulers, layouts, latency and size sweeps, and
the prefetch-effectiveness breakdown — as ASCII charts with the paper's
own numbers alongside.

Run:  python examples/paper_figures.py
"""

from __future__ import annotations

import sys

from repro.analysis import default_results_path, load_results, render_all
from repro.core import banner


def main() -> int:
    path = default_results_path()
    try:
        results = load_results(path)
    except FileNotFoundError:
        print(
            f"No recorded results at {path}.\n"
            "Run `pytest benchmarks/ --benchmark-only` first.",
            file=sys.stderr,
        )
        return 1
    print(banner("Treelet prefetching — recorded evaluation figures"))
    for block in render_all(results):
        print()
        print(block)
    print()
    scales = {v.get("scale", "?") for v in results.values()}
    print(f"(recorded at scale(s): {', '.join(sorted(scales))}; "
          "see EXPERIMENTS.md for the full paper-vs-measured record)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
