#!/usr/bin/env python3
"""Frame-to-frame study: does the prefetcher help once caches are warm?

Orbits the camera around a scene for several frames, replaying every
frame through one persistent GPU model (the real-time rendering regime).
Prints per-frame cycles for the baseline RT unit and the treelet
prefetcher, the cold-frame vs steady-state speedups, and a sparkline of
the per-frame costs.

Run:  python examples/animation_study.py [SCENE] [FRAMES]
"""

from __future__ import annotations

import sys

from repro import BASELINE, DEFAULT, TREELET_PREFETCH
from repro.analysis import sparkline
from repro.core import AnimationConfig, banner, format_table, run_animation


def main() -> None:
    scene = sys.argv[1] if len(sys.argv) > 1 else "SPNZA"
    frames = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    config = AnimationConfig(frames=frames, orbit_degrees_per_frame=4.0)
    print(banner(f"Animation study — {scene}, {frames} frames"))

    print("\nsimulating baseline (one persistent GPU, warm caches)...")
    base = run_animation(scene, BASELINE, config, DEFAULT)
    print("simulating treelet prefetching...")
    pref = run_animation(scene, TREELET_PREFETCH, config, DEFAULT)

    rows = []
    for frame in range(frames):
        rows.append(
            [
                f"frame {frame}" + (" (cold)" if frame == 0 else ""),
                base.frame_cycles[frame],
                pref.frame_cycles[frame],
                round(base.frame_cycles[frame] / pref.frame_cycles[frame], 3),
            ]
        )
    print()
    print(format_table(["frame", "baseline cyc", "prefetch cyc", "speedup"],
                       rows))
    print(f"\nper-frame trend   baseline: {sparkline(base.frame_cycles)}")
    print(f"                  prefetch: {sparkline(pref.frame_cycles)}")
    print(f"\ncold-frame speedup:    "
          f"{base.first_frame / pref.first_frame:.3f}x")
    print(f"steady-state speedup:  "
          f"{base.steady_state / pref.steady_state:.3f}x")
    print(f"warmup ratio:          baseline {base.warmup_ratio:.2f}, "
          f"prefetch {pref.warmup_ratio:.2f}")


if __name__ == "__main__":
    main()
