#!/usr/bin/env python3
"""Render an actual image through the public API (ASCII + PGM output).

The reproduction's traversal code is a real ray tracer: this example
renders a shaded frame of any library scene with the DFS baseline *and*
the two-stack treelet traversal, verifies the images are identical
(Algorithm 1 must not change a pixel), writes a PGM file, and prints an
ASCII preview.

Run:  python examples/frame_renderer.py [SCENE] [SIZE]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.core import banner
from repro.core.pipeline import DEFAULT, get_bvh, get_decomposition
from repro.render import RenderConfig, render
from repro.scenes import build_scene


def main() -> None:
    scene_name = sys.argv[1] if len(sys.argv) > 1 else "WKND"
    size = int(sys.argv[2]) if len(sys.argv) > 2 else 48
    print(banner(f"Rendering {scene_name} at {size}x{size}"))

    scene = build_scene(scene_name)
    bvh = get_bvh(scene_name, DEFAULT)
    decomposition = get_decomposition(scene_name, DEFAULT, 512)
    config = RenderConfig(width=size, height=size)

    print("\nrendering with baseline DFS traversal...")
    dfs_image = render(bvh, scene.camera, config)
    print("rendering with two-stack treelet traversal (Algorithm 1)...")
    treelet_image = render(
        bvh, scene.camera, config, decomposition=decomposition
    )

    difference = dfs_image.max_abs_difference(treelet_image)
    print(f"max per-pixel difference between the two: {difference:.2e} "
          f"({'IDENTICAL' if difference < 1e-12 else 'MISMATCH!'})")

    print()
    print(dfs_image.to_ascii())

    out = Path(f"{scene_name.lower()}_{size}.pgm")
    dfs_image.write_pgm(out)
    print(f"\nwrote {out} ({size}x{size} greyscale PGM); "
          f"coverage {dfs_image.coverage():.0%}, mean {dfs_image.mean():.2f}")


if __name__ == "__main__":
    main()
