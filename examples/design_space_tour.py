#!/usr/bin/env python3
"""Design-space tour: sweep the paper's knobs on one scene.

Walks the axes of the paper's evaluation — heuristics (Fig 10),
schedulers (Fig 13), treelet sizes (Fig 19), voter latency (Fig 16), and
BVH layout options (Fig 14) — on a single scene, so the trade-offs are
visible in under a minute.

Run:  python examples/design_space_tour.py [SCENE]
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro import BASELINE, DEFAULT, TREELET_PREFETCH, Technique, run_experiment, speedup
from repro.core import banner, format_table
from repro.prefetch import PrefetchHeuristic


def evaluate(scene: str, technique: Technique):
    base = run_experiment(scene, BASELINE, DEFAULT)
    result = run_experiment(scene, technique, DEFAULT)
    return speedup(base, result), result


def main() -> None:
    scene = sys.argv[1] if len(sys.argv) > 1 else "SPNZA"
    print(banner(f"Design-space tour — scene {scene}"))

    print("\n-- Prefetch heuristics (paper Fig 10) --")
    rows = []
    for heuristic in [
        PrefetchHeuristic("always"),
        PrefetchHeuristic("popularity", threshold=0.25),
        PrefetchHeuristic("popularity", threshold=0.75),
        PrefetchHeuristic("partial"),
    ]:
        technique = Technique(
            traversal="treelet", layout="treelet", prefetch="treelet",
            heuristic=heuristic,
        )
        gain, result = evaluate(scene, technique)
        rows.append([heuristic.label(), round(gain, 3),
                     result.stats.prefetches_issued])
    print(format_table(["heuristic", "speedup", "prefetch lines"], rows))

    print("\n-- Warp schedulers (paper Fig 13) --")
    rows = []
    for policy in ("baseline", "omr", "pmr"):
        gain, _ = evaluate(scene, replace(TREELET_PREFETCH, scheduler=policy))
        rows.append([policy.upper(), round(gain, 3)])
    print(format_table(["scheduler", "speedup"], rows))

    print("\n-- Treelet sizes (paper Fig 19) --")
    rows = []
    for size in (256, 512, 1024, 2048):
        gain, result = evaluate(
            scene, replace(TREELET_PREFETCH, treelet_bytes=size)
        )
        rows.append([f"{size}B", round(gain, 3), result.treelet_count])
    print(format_table(["max treelet", "speedup", "treelet count"], rows))

    print("\n-- Voter latency (paper Fig 16) --")
    rows = []
    for latency in (0, 32, 128, 512):
        technique = replace(
            TREELET_PREFETCH, voter_mode="pseudo", voter_latency=latency
        )
        gain, result = evaluate(scene, technique)
        rows.append([f"{latency} cyc", round(gain, 3),
                     round(result.stats.voter_accuracy, 3)])
    print(format_table(["voter latency", "speedup", "voter accuracy"], rows))

    print("\n-- BVH layout options (paper Fig 14) --")
    rows = []
    options = {
        "repacked": Technique(traversal="treelet", layout="treelet",
                              prefetch="treelet"),
        "repacked +256B stride": Technique(
            traversal="treelet", layout="treelet", layout_stride=256,
            prefetch="treelet"),
        "mapping table (loose)": Technique(
            traversal="treelet", layout="dfs", prefetch="treelet",
            mapping_mode="loose"),
        "mapping table (strict)": Technique(
            traversal="treelet", layout="dfs", prefetch="treelet",
            mapping_mode="strict"),
    }
    for label, technique in options.items():
        gain, _ = evaluate(scene, technique)
        rows.append([label, round(gain, 3)])
    print(format_table(["layout option", "speedup"], rows))


if __name__ == "__main__":
    main()
