#!/usr/bin/env python3
"""Reproduce the paper's Section 2.4 motivation: ray incoherence.

The paper argues that BVH memory accesses are hard to prefetch with
classical techniques because rays — especially secondary rays — are
incoherent. This example measures it: per ray kind (primary / shadow /
diffuse bounce), the within-warp footprint overlap, nodes per ray, and
treelet-boundary crossings, on any library scene.

Expected shape: primary rays overlap heavily with their warp-mates;
diffuse bounces overlap far less — exactly why stride/stream/GHB
prefetchers fail (bench_ablation_classic_prefetchers) and per-treelet
majority voting works.

Run:  python examples/ray_coherence_study.py [SCENE]
"""

from __future__ import annotations

import sys

from repro.analysis import analyze_by_kind
from repro.core import banner, format_table
from repro.core.pipeline import DEFAULT, get_bvh, get_decomposition, get_rays
from repro.traversal import traverse_dfs_batch


def main() -> None:
    scene = sys.argv[1] if len(sys.argv) > 1 else "FRST"
    print(banner(f"Ray coherence study — scene {scene}"))

    bvh = get_bvh(scene, DEFAULT)
    decomposition = get_decomposition(scene, DEFAULT, 512)
    rays = get_rays(scene, DEFAULT)
    traces = traverse_dfs_batch([ray.clone() for ray in rays], bvh)

    reports = analyze_by_kind(rays, traces, decomposition)
    rows = []
    for kind in ("primary", "shadow", "secondary"):
        if kind not in reports:
            continue
        report = reports[kind]
        rows.append(
            [
                kind,
                report.ray_count,
                round(report.avg_nodes_per_ray, 1),
                round(report.avg_warp_overlap, 3),
                round(report.avg_treelet_transitions, 1),
            ]
        )
    print()
    print(format_table(
        ["ray kind", "rays", "nodes/ray", "warp overlap", "treelet crossings"],
        rows,
    ))
    print(
        "\nwarp overlap = mean Jaccard overlap of node footprints between"
        "\nwarp-mates (1.0 = identical paths). The drop from primary to"
        "\ndiffuse-bounce rays is the irregularity that defeats stride/"
        "\nstream/GHB prefetchers (paper Section 2.4)."
    )


if __name__ == "__main__":
    main()
