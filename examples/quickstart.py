#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline result on one scene.

Builds the BUNNY scene, traces a frame of primary + secondary rays
through the baseline RT unit and through the treelet-prefetching RT unit
(ALWAYS heuristic, PMR scheduler, 512 B treelets), and prints the
speedup, memory latency, and prefetch effectiveness.

Run:  python examples/quickstart.py [SCENE]
"""

from __future__ import annotations

import sys

from repro import BASELINE, DEFAULT, TREELET_PREFETCH, run_experiment, speedup
from repro.core import banner, format_series


def main() -> None:
    scene = sys.argv[1] if len(sys.argv) > 1 else "BUNNY"
    print(banner(f"Treelet prefetching quickstart — scene {scene}"))

    print("\n[1/3] Baseline RT unit (DFS traversal, no prefetching)...")
    base = run_experiment(scene, BASELINE, DEFAULT)
    print(f"      {base.stats.cycles} cycles, "
          f"{base.stats.visits_completed} node visits, "
          f"avg BVH load latency {base.stats.avg_node_demand_latency:.0f} cyc")

    print("\n[2/3] Treelet traversal + treelet prefetcher (ALWAYS, PMR)...")
    pref = run_experiment(scene, TREELET_PREFETCH, DEFAULT)
    print(f"      {pref.stats.cycles} cycles, "
          f"{pref.stats.prefetches_issued} prefetch lines issued, "
          f"avg BVH load latency {pref.stats.avg_node_demand_latency:.0f} cyc")

    print("\n[3/3] Comparison")
    gain = speedup(base, pref)
    latency_cut = 1 - (
        pref.stats.avg_node_demand_latency / base.stats.avg_node_demand_latency
    )
    print(f"      speedup:            {gain:.3f}x  (paper gmean: 1.321x)")
    print(f"      BVH latency cut:    {100 * latency_cut:.1f}%  (paper: 54%)")
    print(f"      power ratio:        "
          f"{pref.power.avg_power / base.power.avg_power:.3f}  (paper: ~1.0)")
    print()
    print(format_series(
        "      prefetch effectiveness (fractions of issued prefetches):",
        pref.stats.effectiveness.fractions(),
    ))
    print(f"\nScene stats: {base.tree.triangle_count} triangles, "
          f"depth {base.tree.depth}, {pref.treelet_count} treelets of "
          f"<= {pref.technique.treelet_bytes} B")


if __name__ == "__main__":
    main()
