#!/usr/bin/env python3
"""Bring your own geometry: run the full pipeline on a custom scene.

Shows the low-level API: build a mesh from the procedural generators (or
your own vertex/face arrays), construct the 6-wide BVH, form treelets,
trace rays with both traversal algorithms, and drive the timing model
directly with a custom GPU configuration.

Run:  python examples/custom_scene.py
"""

from __future__ import annotations

import numpy as np

from repro.bvh import BuildConfig, build_wide_bvh, compute_tree_stats
from repro.core import banner
from repro.core.config import CacheConfig, GpuConfig
from repro.geometry import Mesh, merge_meshes
from repro.gpusim import GpuModel
from repro.prefetch import MajorityVoter, TreeletAddressMap, TreeletPrefetcher
from repro.scenes import Camera, RayGenConfig, generate_rays, terrain, scattered, tree
from repro.traversal import summarize_traces, traverse_dfs_batch, traverse_two_stack_batch
from repro.treelet import form_treelets, treelet_layout
from repro.bvh import dfs_layout


def build_campsite() -> Mesh:
    """A custom scene: rolling ground, a ring of trees, and a tent."""
    ground = terrain(n=18, size=24.0, amplitude=1.2, seed=42)
    trees = scattered(tree(seed=7, detail=6), 30, extent=20.0, seed=8)
    tent_vertices = np.array(
        [
            [-1.5, 0.0, -1.5], [1.5, 0.0, -1.5], [0.0, 2.0, -1.5],
            [-1.5, 0.0, 1.5], [1.5, 0.0, 1.5], [0.0, 2.0, 1.5],
        ]
    )
    tent_faces = np.array(
        [[0, 1, 2], [3, 5, 4], [0, 2, 5], [0, 5, 3], [1, 4, 5], [1, 5, 2]]
    )
    tent = Mesh(tent_vertices, tent_faces, "tent")
    return merge_meshes([ground, trees, tent], "campsite")


def main() -> None:
    print(banner("Custom scene: campsite"))

    # 1. Geometry -> 6-wide BVH.
    mesh = build_campsite()
    bvh = build_wide_bvh(
        mesh.triangles(),
        config=BuildConfig(max_leaf_size=2),
        branching_factor=3,
        name="campsite",
    )
    bvh.validate()
    stats = compute_tree_stats(bvh)
    print(f"\nBVH: {stats.triangle_count} tris, {stats.node_count} nodes, "
          f"depth {stats.depth}, {stats.size_mb:.2f} MB")

    # 2. Treelets.
    decomposition = form_treelets(bvh, max_bytes=512)
    decomposition.validate()
    print(f"Treelets: {decomposition.treelet_count} "
          f"(mean occupancy {decomposition.occupancy():.2f})")

    # 3. Rays: a frame from a custom camera.
    camera = Camera(position=(14.0, 9.0, 14.0), look_at=(0.0, 1.0, 0.0))
    rays = generate_rays(camera, bvh, RayGenConfig(width=16, height=16, seed=1))
    print(f"Rays: {len(rays)} (primary + secondary + shadow)")

    # 4. Functional traversal, both algorithms.
    dfs_traces = traverse_dfs_batch([r.clone() for r in rays], bvh)
    two_traces = traverse_two_stack_batch(
        [r.clone() for r in rays], bvh, decomposition
    )
    dfs_summary = summarize_traces(dfs_traces)
    two_summary = summarize_traces(two_traces)
    print(f"DFS:      {dfs_summary.avg_nodes_per_ray:.1f} nodes/ray "
          f"(max {dfs_summary.max_nodes}), {dfs_summary.hit_count} hits")
    print(f"Two-stack: {two_summary.avg_nodes_per_ray:.1f} nodes/ray "
          f"(max {two_summary.max_nodes}), {two_summary.hit_count} hits")

    # 5. Timing model with a custom GPU (2 SMs, small caches).
    gpu = GpuConfig(
        n_sms=2,
        l1=CacheConfig(size_bytes=8 * 1024, latency=20),
        l2=CacheConfig(size_bytes=64 * 1024, associativity=16, latency=160),
    )

    baseline_model = GpuModel(gpu)
    baseline_model.load(dfs_traces, bvh, dfs_layout(bvh))
    baseline_stats = baseline_model.run()

    layout = treelet_layout(decomposition)
    address_map = TreeletAddressMap(decomposition, layout, gpu.l1.line_bytes)

    def prefetcher_factory(_sm: int) -> TreeletPrefetcher:
        return TreeletPrefetcher(
            address_map,
            voter=MajorityVoter("pseudo", latency=32),
            warp_size=gpu.warp_size,
            warp_buffer_size=gpu.warp_buffer_size,
        )

    prefetch_model = GpuModel(
        gpu, scheduler_policy="pmr", prefetcher_factory=prefetcher_factory
    )
    prefetch_model.load(two_traces, bvh, layout)
    prefetch_stats = prefetch_model.run()

    print(f"\nBaseline RT unit:   {baseline_stats.cycles} cycles "
          f"(avg BVH latency {baseline_stats.avg_node_demand_latency:.0f})")
    print(f"Treelet prefetcher: {prefetch_stats.cycles} cycles "
          f"(avg BVH latency {prefetch_stats.avg_node_demand_latency:.0f})")
    print(f"Speedup: {baseline_stats.cycles / prefetch_stats.cycles:.3f}x "
          f"with a realistic 32-cycle pseudo voter")


if __name__ == "__main__":
    main()
