"""Legacy shim so `setup.py develop` works on environments without wheel."""
from setuptools import setup

setup()
